"""The runtime seam: everything a protocol role needs from its host.

Role classes (proposers, coordinators, acceptors, learners in
:mod:`repro.smr.instances`, :mod:`repro.core.generalized`,
:mod:`repro.core.multicoordinated`) never touch sockets, wall clocks or
the event heap directly.  They talk to the world exclusively through the
:class:`Process` base class, which in turn talks only to the
:class:`Runtime` protocol defined here: message transport, timers, stable
storage, randomness and the clock.

Two implementations exist:

* :class:`repro.sim.scheduler.Simulation` -- the deterministic
  discrete-event simulator (virtual clock, seeded RNG, in-memory
  network with loss/partition injection).  This is the test oracle.
* :class:`repro.net.transport.NetRuntime` -- an asyncio event loop with
  real UDP sockets (TCP fallback for oversized frames) for deployments
  of the same role classes as OS processes on a network.

The contract that keeps the role code backend-agnostic:

* ``runtime.send(src, dst, msg)`` is asynchronous and unordered; a
  message to *self* is delivered reliably but still asynchronously (a
  fresh dispatch, never a reentrant call).
* ``runtime.clock`` only ever moves forward; roles may compare and
  subtract timestamps but must not use them as identities or assume any
  relation to real time.
* ``runtime.rng`` is the only source of randomness, seeded by the host.
* ``runtime.schedule`` powers :meth:`Process.set_timer`; there is no
  guaranteed relation between timer resolution and message latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Protocol, runtime_checkable

from repro.sim.storage import StableStorage


class Cancellable(Protocol):
    """A scheduled action's handle: the one method timers need."""

    def cancel(self) -> None: ...


@runtime_checkable
class Runtime(Protocol):
    """What a :class:`Process` requires from its host backend."""

    #: current time in seconds (virtual or wall-clock), monotone
    clock: float
    #: the host's seeded random source -- roles must not seed their own
    rng: random.Random
    #: message/latency accounting (``repro.sim.metrics.Metrics`` API)
    metrics: Any
    #: pid -> process registry (used by drivers and fault injection)
    processes: dict[Hashable, Any]

    def add_process(self, process: Any) -> None: ...

    def schedule(self, delay: float, action: Callable[[], None]) -> Cancellable: ...

    def send(self, src: Hashable, dst: Hashable, msg: Any) -> None: ...

    def make_storage(self, owner: str) -> StableStorage: ...


@dataclass
class Timer:
    """Handle for a scheduled (possibly periodic) timer."""

    event: Cancellable | None
    period: float | None = None
    cancelled: bool = field(default=False)

    def cancel(self) -> None:
        self.cancelled = True
        if self.event is not None:
            self.event.cancel()


class Process:
    """Base class for all protocol agents, on any :class:`Runtime`.

    Incoming messages are dispatched to ``on_<messagetype>`` methods by
    the lower-cased class name of the message, e.g. a ``Phase1a``
    dataclass is handled by ``on_phase1a(msg, src)``.

    The failure model is crash-recovery (Section 2.1.1): a crashed
    process drops all incoming messages and timers; on recovery its
    volatile state is reinitialized by :meth:`Process.on_recover`,
    typically from its :class:`repro.sim.storage.StableStorage`.

    The attribute holding the runtime is named ``sim`` for historical
    reasons (the simulator was the first backend); it is any
    :class:`Runtime`.
    """

    def __init__(self, pid: Hashable, sim: Runtime) -> None:
        self.pid = pid
        self.sim = sim
        self.alive = True
        self.crash_count = 0
        self.storage = sim.make_storage(str(pid))
        self._timers: list[Timer] = []
        sim.add_process(self)

    # -- messaging --------------------------------------------------------

    def send(self, dst: Hashable, msg: Any) -> None:
        """Send *msg* to the process with id *dst*."""
        if not self.alive:
            return
        self.sim.send(self.pid, dst, msg)

    def broadcast(self, dsts: Any, msg: Any) -> None:
        """Send *msg* to every destination in *dsts*."""
        for dst in dsts:
            self.send(dst, msg)

    def deliver(self, msg: Any, src: Hashable) -> None:
        """Dispatch *msg* to the matching ``on_<type>`` handler."""
        if not self.alive:
            return
        handler = getattr(self, "on_" + type(msg).__name__.lower(), None)
        if handler is None:
            self.on_unhandled(msg, src)
            return
        handler(msg, src)

    def on_unhandled(self, msg: Any, src: Hashable) -> None:
        """Hook for messages with no dedicated handler (default: error)."""
        raise TypeError(f"{type(self).__name__} {self.pid} cannot handle {msg!r} from {src!r}")

    # -- timers -----------------------------------------------------------

    def set_timer(self, delay: float, action: Callable[[], None]) -> Timer:
        """Run *action* after *delay* time units unless crashed/cancelled."""
        timer = Timer(event=None)

        def fire() -> None:
            # One-shot: retire the handle so long-running processes that
            # arm many timers (e.g. batch flush deadlines) don't accumulate
            # fired Timer/Event/closure triples in _timers forever.
            if timer in self._timers:
                self._timers.remove(timer)
            if timer.cancelled or not self.alive:
                return
            action()

        timer.event = self.sim.schedule(delay, fire)
        self._timers.append(timer)
        return timer

    def set_periodic_timer(self, period: float, action: Callable[[], None]) -> Timer:
        """Run *action* every *period* time units until cancelled/crash."""
        timer = Timer(event=None, period=period)

        def fire() -> None:
            if timer.cancelled or not self.alive:
                return
            action()
            if not timer.cancelled and self.alive:
                timer.event = self.sim.schedule(period, fire)

        timer.event = self.sim.schedule(period, fire)
        self._timers.append(timer)
        return timer

    def drop_timer(self, timer: Timer) -> None:
        """Cancel *timer* and release its handle immediately.

        Use for timers retired on an external signal (e.g. a retransmission
        timer cancelled by an ack): unlike a bare ``cancel()``, the handle
        does not linger in ``_timers`` until the next crash.
        """
        timer.cancel()
        if timer in self._timers:
            self._timers.remove(timer)

    def _cancel_timers(self) -> None:
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    # -- failure model ------------------------------------------------------

    def crash(self) -> None:
        """Stop the process: lose volatile state, keep stable storage."""
        if not self.alive:
            return
        self.alive = False
        self.crash_count += 1
        self._cancel_timers()
        self.on_crash()

    def recover(self) -> None:
        """Restart the process; subclasses reload state in *on_recover*."""
        if self.alive:
            return
        self.alive = True
        self.on_recover()

    def on_crash(self) -> None:
        """Hook called when the process crashes (volatile cleanup)."""

    def on_recover(self) -> None:
        """Hook called on recovery (reload from stable storage)."""

    # -- conveniences -------------------------------------------------------

    @property
    def now(self) -> float:
        return self.sim.clock

    @property
    def metrics(self) -> Any:
        return self.sim.metrics

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self.alive else "down"
        return f"{type(self).__name__}({self.pid!r}, {status})"
