"""The paper's contribution: Multicoordinated Paxos.

* :mod:`repro.core.rounds` -- round numbers ⟨MCount:mCount, Id, RType, S⟩
  and round schedules (Sections 4.4-4.5);
* :mod:`repro.core.quorums` -- acceptor and coordinator quorum systems
  satisfying Assumptions 1-3;
* :mod:`repro.core.messages` -- the protocol message vocabulary;
* :mod:`repro.core.provedsafe` -- value-picking rules: the Fast Paxos rule
  for consensus and Definition 1's ``ProvedSafe`` for c-structs;
* :mod:`repro.core.multicoordinated` -- Multicoordinated Paxos for
  consensus (Section 3.1);
* :mod:`repro.core.generalized` -- Multicoordinated Generalized Paxos
  (Section 3.2) with collision recovery (Section 4.2) and the disk-write
  reduction (Section 4.4);
* :mod:`repro.core.broadcast` -- the Generic Broadcast service facade
  (Section 3.3);
* :mod:`repro.core.abstract` -- the executable Abstract Multicoordinated
  Paxos specification (Appendix A.2) used as a safety oracle;
* :mod:`repro.core.invariants` -- run-level safety checkers.
"""

from repro.core.checkpoint import CheckpointConfig, FrontierTracker, RetransmitConfig
from repro.core.messages import (
    ANY,
    CatchUp,
    Nack,
    Phase1a,
    Phase1b,
    Phase2a,
    Phase2b,
    Propose,
    ProposeBatch,
)
from repro.core.quorums import CoordinatorQuorums, QuorumSystem
from repro.core.rounds import ZERO, RoundId, RoundSchedule

__all__ = [
    "ANY",
    "CatchUp",
    "CheckpointConfig",
    "CoordinatorQuorums",
    "FrontierTracker",
    "Nack",
    "Phase1a",
    "Phase1b",
    "Phase2a",
    "Phase2b",
    "Propose",
    "ProposeBatch",
    "QuorumSystem",
    "RetransmitConfig",
    "RoundId",
    "RoundSchedule",
    "ZERO",
]
