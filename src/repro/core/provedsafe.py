"""Value-picking rules executed by coordinators at the start of phase 2.

Two rules are implemented:

* :func:`pick_value` -- the Fast Paxos rule for plain consensus
  (Section 2.2's three-case analysis), used by Multicoordinated Paxos for
  consensus (Section 3.1) and by the Fast Paxos baseline;
* :func:`proved_safe` -- Definition 1's ``ProvedSafe(Q, 1bMsg)`` over
  c-structs, used by the generalized protocols (Section 3.2).

Both are written for cardinality quorums.  The key quantity is the minimal
realizable intersection between the phase-1 quorum ``Q`` and a k-quorum
``R``: ``m = |Q| + q_k - n`` where ``q_k`` is the k-quorum size.  Section
3.3.2 states the special cases ``m = n - 2F`` (classic ``k``, ``|Q| = n-F``)
and ``m = n - 2E`` (fast ``k``); we compute ``m`` from the actual sizes,
which also covers phase-1 quorums larger than minimal.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Any, Hashable, Mapping, Sequence

from repro.core.messages import Phase1b
from repro.core.quorums import QuorumSystem
from repro.core.rounds import ZERO, RoundId
from repro.cstruct.base import CStruct, glb_set, lub_set


@dataclass(frozen=True)
class Pick:
    """Outcome of the consensus picking rule.

    ``free`` means any proposed value is pickable (cases "no value chosen
    or choosable at k"); otherwise ``value`` is the unique pickable value.
    """

    free: bool
    value: Any = None


def pick_value(
    quorums: QuorumSystem,
    msgs: Mapping[Hashable, Phase1b],
    k_is_fast,
) -> Pick:
    """The Fast Paxos coordinator rule (Section 2.2).

    Args:
        quorums: The acceptor quorum system.
        msgs: Phase "1b" messages, one per acceptor of the phase-1 quorum.
        k_is_fast: Callable classifying a :class:`RoundId` as fast.

    Returns:
        A :class:`Pick`; raises if the Fast Quorum Requirement was violated
        (two values provably choosable at ``k``).
    """
    if not msgs:
        raise ValueError("picking requires at least one 1b message")
    k = max(msg.vrnd for msg in msgs.values())
    if k == ZERO:
        return Pick(free=True)
    k_reporters = {acc: msg for acc, msg in msgs.items() if msg.vrnd == k}
    q_k = quorums.quorum_size(fast=bool(k_is_fast(k)))
    min_inter = len(msgs) + q_k - quorums.n
    if min_inter <= 0:
        raise ValueError(
            "quorum assumptions violated: a k-quorum may not intersect Q "
            f"(|Q|={len(msgs)}, q_k={q_k}, n={quorums.n})"
        )
    votes: dict[Any, int] = {}
    for msg in k_reporters.values():
        votes[msg.vval] = votes.get(msg.vval, 0) + 1
    candidates = [value for value, count in votes.items() if count >= min_inter]
    if len(candidates) > 1:
        raise ValueError(
            f"Fast Quorum Requirement violated: {candidates} all choosable at {k}"
        )
    if not candidates:
        return Pick(free=True)
    return Pick(free=False, value=candidates[0])


def proved_safe(
    quorums: QuorumSystem,
    msgs: Mapping[Hashable, Phase1b],
    k_is_fast,
    max_enumeration: int = 512,
) -> list[CStruct]:
    """``ProvedSafe(Q, 1bMsg)`` from Definition 1 (Section 3.2).

    Returns the non-empty set of pickable c-structs for the round whose
    phase 1 collected *msgs* from quorum ``Q = msgs.keys()``:

    * if no realizable ``Q ∩ R`` (R a k-quorum) reported ``vrnd = k``
      unanimously, any reported value with ``vrnd = k`` is pickable;
    * otherwise the lub of the glbs over those intersections is the unique
      pickable c-struct.

    Only minimal intersections (size ``m = |Q| + q_k - n``) are
    enumerated: the glb over a superset is ⊑ the glb over a subset, so the
    lub over all intersections equals the lub over the minimal ones.  When
    the enumeration would exceed *max_enumeration* subsets, sampled subsets
    anchored at each sorted offset are used instead (still sound -- every
    glb over a realizable intersection is safe -- merely less precise).
    """
    if not msgs:
        raise ValueError("ProvedSafe requires at least one 1b message")
    k = max(msg.vrnd for msg in msgs.values())
    k_acceptors = sorted(acc for acc, msg in msgs.items() if msg.vrnd == k)
    vals = {acc: msgs[acc].vval for acc in k_acceptors}
    q_k = quorums.quorum_size(fast=bool(k_is_fast(k))) if k != ZERO else quorums.classic_quorum_size
    min_inter = len(msgs) + q_k - quorums.n
    if min_inter <= 0:
        raise ValueError(
            "quorum assumptions violated: a k-quorum may not intersect Q "
            f"(|Q|={len(msgs)}, q_k={q_k}, n={quorums.n})"
        )
    if len(k_acceptors) < min_inter:
        # QinterRAtk is empty: nothing was or can be chosen at k.
        return [vals[acc] for acc in k_acceptors]
    first = vals[k_acceptors[0]]
    if all(vals[acc] == first for acc in k_acceptors[1:]):
        # Unanimous k-reports (the steady-state case): every intersection
        # glb -- and hence their lub -- is the reported value itself; skip
        # the subset enumeration entirely.
        return [first]
    # Fold the lub of the per-intersection glbs with a single running
    # accumulator; with incremental digraph histories each step reuses the
    # accumulated constraint graph instead of re-deriving conflict pairs.
    accumulator: CStruct | None = None
    for subset in _bounded_combinations(k_acceptors, min_inter, max_enumeration):
        gamma = glb_set([vals[acc] for acc in subset])
        accumulator = gamma if accumulator is None else accumulator.lub(gamma)
    return [accumulator]


def _bounded_combinations(items: Sequence, size: int, limit: int):
    """All size-*size* combinations, or a sliding-window sample if too many."""
    from math import comb

    if comb(len(items), size) <= limit:
        yield from combinations(items, size)
        return
    for start in range(len(items) - size + 1):
        yield tuple(items[start : start + size])
