"""Multicoordinated Generalized Paxos (Section 3.2).

The generalized algorithm agrees on an ever-growing c-struct instead of a
single value, so one instance implements state-machine replication: every
proposed command is eventually *contained* in every learner's learned
c-struct, and learned c-structs are mutually compatible.

Round taxonomy (the engine subsumes the whole Paxos family):

* single-coordinated classic rounds + ``AlwaysConflict`` histories
  ≈ Classic Paxos as a total-order broadcast protocol;
* single-coordinated classic + fast rounds ≈ Generalized Paxos
  (Section 2.3), deployed by :func:`repro.protocols.generalized.
  build_generalized_paxos`;
* multicoordinated classic rounds -- the paper's contribution: phase 2a is
  executed by every coordinator of the round, and an acceptor accepts the
  *glb* of the c-structs received from a full coordinator quorum
  (``u = ⊓ L2aVals``), extending its previous value with ``⊔`` when
  compatible.

Collisions (Section 4.2): in a multicoordinated round, coordinators that
receive commuting commands in different orders forward *compatible*
c-structs, and the glb simply defers the commands that have not yet reached
a full quorum -- no harm done.  Only *conflicting* commands received in
different orders make the forwarded c-structs incompatible; acceptors
detect this before accepting anything (no wasted disk write, unlike
fast-round collisions) and react as if a phase "1a" for the next round had
been received.

Liveness (Section 4.3): coordinators optionally run the failure detector of
:mod:`repro.core.liveness`; the leader starts a higher (by default
single-coordinated) round when commands stay unserved past a timeout,
which covers leader crashes, coordinator-quorum loss and persistent
collisions with one mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from math import comb
from typing import Callable, Hashable

from repro.core.liveness import FailureDetector, Heartbeat, LivenessConfig
from repro.core.messages import Learned, Nack, Phase1a, Phase1b, Phase2a, Phase2b, Propose
from repro.core.provedsafe import proved_safe
from repro.core.quorums import QuorumSystem
from repro.core.rounds import ZERO, RoundId, RoundSchedule
from repro.core.topology import Topology
from repro.cstruct.base import CStruct, IncompatibleError, glb_set
from repro.cstruct.commands import Command
from repro.sim.process import Process
from repro.sim.scheduler import Simulation


@dataclass
class GeneralizedConfig:
    """Static configuration of one generalized deployment."""

    topology: Topology
    quorums: QuorumSystem
    schedule: RoundSchedule
    bottom: CStruct
    send_2b_to_coordinators: bool = True
    reduce_disk_writes: bool = True
    liveness: LivenessConfig | None = None
    learner_enumeration_limit: int = 64

    def __post_init__(self) -> None:
        if tuple(sorted(self.quorums.acceptors)) != tuple(sorted(self.topology.acceptors)):
            raise ValueError("quorum system must be defined over the topology's acceptors")


class GenProposer(Process):
    """Proposes commands; optionally picks per-command quorums (Section 4.1)."""

    def __init__(self, pid: str, sim: Simulation, config: GeneralizedConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.balance_load = False
        self.balance_fast = False  # pick fast-sized acceptor quorums instead

    def propose(self, cmd: Command) -> None:
        self.metrics.record_propose(cmd, self.now)
        coord_quorum = None
        acceptor_quorum = None
        if self.balance_load:
            coord_quorum, acceptor_quorum = self._pick_quorums()
        msg = Propose(cmd, coord_quorum=coord_quorum, acceptor_quorum=acceptor_quorum)
        # Every coordinator hears the proposal (the leader's stuck
        # detection needs it); only the chosen quorum forwards it.
        self.broadcast(self.config.topology.coordinators, msg)
        self.broadcast(self.config.topology.acceptors, msg)

    def _pick_quorums(self) -> tuple[frozenset[int], frozenset[str]]:
        """Uniformly choose one coordinator quorum and one acceptor quorum."""
        rng = self.sim.rng
        coords = list(self.config.schedule.coordinators)
        c_size = len(coords) // 2 + 1
        coord_quorum = frozenset(rng.sample(coords, c_size))
        accs = list(self.config.topology.acceptors)
        a_size = self.config.quorums.quorum_size(fast=self.balance_fast)
        acceptor_quorum = frozenset(rng.sample(accs, a_size))
        return coord_quorum, acceptor_quorum


class GenCoordinator(Process):
    """A coordinator of the generalized algorithm."""

    def __init__(
        self, pid: str, sim: Simulation, config: GeneralizedConfig, index: int
    ) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.index = index
        self.crnd: RoundId = ZERO
        self.cval: CStruct | None = None
        self.highest_seen: RoundId = ZERO
        self.known_cmds: list[Command] = []
        self._known: set[Command] = set()  # mirror of known_cmds
        # Commands not yet appended to cval: _forward_pending drains this
        # delta instead of rescanning the whole known_cmds list per event.
        self._unforwarded: list[Command] = []
        self.rounds_started = 0
        self._p1b: dict[RoundId, dict[Hashable, Phase1b]] = {}
        self._acceptor_hint: dict[Command, frozenset[str]] = {}
        # Liveness state.
        self._fd: FailureDetector | None = None
        self._unserved: dict[Command, float] = {}
        self._learned_cmds: set[Command] = set()
        self._last_round_change = 0.0
        if config.liveness is not None:
            peers = list(enumerate(config.topology.coordinators))
            self._fd = FailureDetector(
                self, index, peers, config.liveness, on_check=self._progress_check
            )
            self._fd.start()

    # -- round management ------------------------------------------------------

    def start_round(self, rnd: RoundId) -> None:
        """Phase1a(c, i)."""
        if not self.config.schedule.is_coordinator_of(self.index, rnd):
            raise ValueError(f"coordinator {self.index} does not coordinate {rnd}")
        if rnd <= self.crnd:
            raise ValueError(f"round {rnd} is not above current round {self.crnd}")
        self._adopt(rnd)
        self.rounds_started += 1
        self._last_round_change = self.now
        self.broadcast(self.config.topology.acceptors, Phase1a(rnd))

    def _adopt(self, rnd: RoundId) -> None:
        self.crnd = rnd
        self.cval = None
        self.highest_seen = max(self.highest_seen, rnd)

    # -- proposals (Phase2aClassic) ------------------------------------------------

    def on_propose(self, msg: Propose, src: Hashable) -> None:
        cmd = msg.cmd
        if cmd not in self._unserved and cmd not in self._learned_cmds:
            self._unserved[cmd] = self.now
        if msg.coord_quorum is not None and self.index not in msg.coord_quorum:
            return
        if cmd not in self._known:
            self._known.add(cmd)
            self.known_cmds.append(cmd)
            self._unforwarded.append(cmd)
            if msg.acceptor_quorum is not None:
                self._acceptor_hint[cmd] = msg.acceptor_quorum
        self._forward_pending()

    def _forward_pending(self) -> None:
        """Append the unforwarded delta to cval and send the grown c-struct.

        Only the suffix of commands not yet in ``cval`` is examined, so a
        burst of proposals costs O(new·conflicts) lattice work instead of
        rescanning the entire command history per proposal.
        """
        if self.cval is None or self.crnd == ZERO:
            return
        if self.config.schedule.is_fast(self.crnd):
            return  # proposers talk to acceptors directly in fast rounds
        if not self.config.schedule.is_coordinator_of(self.index, self.crnd):
            return
        if not self._unforwarded:
            return
        pending = self._unforwarded
        self._unforwarded = []
        appended = [cmd for cmd in pending if not self.cval.contains(cmd)]
        if not appended:
            return
        grown = self.cval.extend(appended)
        self.cval = grown
        for cmd in appended:
            self.metrics.count_command_handled(self.pid)
        targets = self._targets_for(appended)
        self.broadcast(targets, Phase2a(self.crnd, grown, self.index))

    def _targets_for(self, appended: list[Command]) -> tuple[str, ...]:
        """Acceptors to notify: the union of the commands' quorum hints."""
        hints = [self._acceptor_hint.get(cmd) for cmd in appended]
        if any(hint is None for hint in hints):
            return self.config.topology.acceptors
        union: set[str] = set()
        for hint in hints:
            union |= hint
        return tuple(sorted(union))

    # -- phase 1b / Phase2Start ---------------------------------------------------

    def on_phase1b(self, msg: Phase1b, src: Hashable) -> None:
        rnd = msg.rnd
        self.highest_seen = max(self.highest_seen, rnd)
        if not self.config.schedule.is_coordinator_of(self.index, rnd):
            return
        if rnd > self.crnd:
            self._adopt(rnd)
        if rnd != self.crnd or self.cval is not None:
            return
        self._p1b.setdefault(rnd, {})[msg.acceptor] = msg
        msgs = self._p1b[rnd]
        if len(msgs) < self.config.quorums.classic_quorum_size:
            return
        self._phase2start(msgs)

    def _phase2start(self, msgs: dict[Hashable, Phase1b]) -> None:
        """Pick ``v = w • σ`` with ``w ∈ ProvedSafe(Q, 1bMsg)`` and send it."""
        picks = proved_safe(self.config.quorums, msgs, self.config.schedule.is_fast)
        value = max(picks, key=lambda v: (len(v.command_set()), str(v)))
        if not self.config.schedule.is_fast(self.crnd):
            value = value.extend(
                cmd for cmd in self.known_cmds if not value.contains(cmd)
            )
            self._unforwarded = []  # everything known is now in cval
        self.cval = value
        self.broadcast(
            self.config.topology.acceptors, Phase2a(self.crnd, value, self.index)
        )

    # -- monitoring / liveness ----------------------------------------------------

    def on_phase2b(self, msg: Phase2b, src: Hashable) -> None:
        self.highest_seen = max(self.highest_seen, msg.rnd)

    def on_learned(self, msg: Learned, src: Hashable) -> None:
        """A learner's progress report: these commands need no recovery."""
        for cmd in msg.cmds:
            self._learned_cmds.add(cmd)
            self._unserved.pop(cmd, None)

    def on_heartbeat(self, msg: Heartbeat, src: Hashable) -> None:
        if self._fd is not None:
            self._fd.on_heartbeat(msg)

    def on_nack(self, msg: Nack, src: Hashable) -> None:
        self.highest_seen = max(self.highest_seen, msg.higher)

    def is_leader(self) -> bool:
        return self._fd.is_leader() if self._fd is not None else self.index == 0

    def _progress_check(self) -> None:
        """Leader-only: start a recovery round when commands stay unserved."""
        liveness = self.config.liveness
        if liveness is None or not self.is_leader():
            return
        if self.now - self._last_round_change < liveness.stuck_timeout:
            return
        stuck = [
            cmd
            for cmd, since in self._unserved.items()
            if self.now - since > liveness.stuck_timeout
        ]
        if not stuck:
            return
        base = max(self.highest_seen, self.crnd)
        rnd = RoundId(
            mcount=base.mcount,
            count=base.count + 1,
            coord=self.index,
            rtype=liveness.recovery_rtype,
        )
        self.start_round(rnd)

    # -- crash-recovery -------------------------------------------------------------

    def on_crash(self) -> None:
        """Coordinators keep *no* stable state (Section 4.4)."""
        self.crnd = ZERO
        self.cval = None
        self.known_cmds = []
        self._known = set()
        self._unforwarded = []
        self._p1b = {}
        self._unserved = {}
        self._learned_cmds = set()

    def on_recover(self) -> None:
        if self._fd is not None:
            self._fd.start()


class GenAcceptor(Process):
    """An acceptor of the generalized algorithm."""

    def __init__(self, pid: str, sim: Simulation, config: GeneralizedConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.rnd: RoundId = ZERO
        self.vrnd: RoundId = ZERO
        self.vval: CStruct = config.bottom
        self.pending: list[Command] = []
        self._pending_set: set[Command] = set()  # mirror of pending
        self.collisions_detected = 0
        self.fast_accepts = 0
        self.commands_accepted = 0  # distinct commands this acceptor accepted
        self._p2a: dict[RoundId, dict[int, CStruct]] = {}
        # Running lub of every value recorded per round: the collision
        # detector merges each incoming value into it (one lub) instead of
        # re-checking all buffered pairs.
        self._p2a_merge: dict[RoundId, CStruct] = {}
        self._collided: set[RoundId] = set()
        self.storage.write("mcount", 0)

    # -- phase 1 ---------------------------------------------------------------------

    def on_phase1a(self, msg: Phase1a, src: Hashable) -> None:
        if msg.rnd <= self.rnd:
            if msg.rnd < self.rnd:
                self.send(src, Nack(msg.rnd, self.rnd, self.pid))
            return
        self._advance_round(msg.rnd)
        self._send_1b(msg.rnd)

    def _send_1b(self, rnd: RoundId) -> None:
        coords = self.config.topology.coordinator_pids(
            self.config.schedule.coordinators_of(rnd)
        )
        self.broadcast(coords, Phase1b(rnd, self.vrnd, self.vval, self.pid))

    def _advance_round(self, rnd: RoundId) -> None:
        previous = self.rnd
        self.rnd = rnd
        if self.config.reduce_disk_writes:
            if rnd.mcount > previous.mcount:
                self.storage.write("mcount", rnd.mcount)
        else:
            self.storage.write("rnd", rnd)

    # -- phase 2b (classic) ------------------------------------------------------------

    def on_phase2a(self, msg: Phase2a, src: Hashable) -> None:
        rnd = msg.rnd
        if rnd < self.rnd:
            self.send(src, Nack(rnd, self.rnd, self.pid))
            return
        buffer = self._p2a.setdefault(rnd, {})
        # A coordinator's cval grows monotonically within a round, but the
        # network may reorder its "2a" messages; keep the largest seen so a
        # stale message cannot regress the buffer.
        previous = buffer.get(msg.coord)
        changed = True
        if previous is None:
            buffer[msg.coord] = msg.val
        elif len(previous.command_set()) < len(msg.val.command_set()):
            # Strictly more commands: newer on the coordinator's monotone
            # growth path (a reordered older message can only be smaller),
            # or a post-crash fork -- either way the larger value stands
            # and any incompatibility surfaces in the collision check.
            buffer[msg.coord] = msg.val
        elif previous is msg.val or previous == msg.val:
            changed = False  # duplicate delivery
        elif len(previous.command_set()) == len(msg.val.command_set()):
            buffer[msg.coord] = msg.val  # same-size fork: surface the collision
        elif msg.val.leq(previous):
            changed = False  # stale reordered message
        else:
            buffer[msg.coord] = msg.val  # smaller incompatible fork: surface it
        if changed and self._detect_collision(rnd, msg.val):
            # An unchanged buffer cannot newly collide; only re-check after
            # an update.
            return
        if self.config.schedule.is_fast(rnd):
            # Fast rounds: a single coordinator's "2a" suffices (Section 3.3).
            self._accept_classic(rnd, msg.val)
            self._try_fast_append()
            return
        if not changed:
            # Byte-identical buffer (duplicate or stale-reordered message):
            # every quorum glb was already evaluated when the buffer last
            # changed.
            return
        if (
            self.vrnd == rnd
            and len(msg.val.command_set()) <= len(self.vval.command_set())
            and msg.val.leq(self.vval)
        ):
            # Redundant delivery: this coordinator's contribution is below
            # the accepted value, so every quorum glb it participates in is
            # too, and quorums without it saw no new information.  Skip the
            # quorum enumeration entirely (the suffix-diff leq makes this
            # check O(|msg.val|), independent of the accepted history).
            return
        senders = frozenset(buffer)
        for quorum in self.config.schedule.coord_quorums(rnd):
            if msg.coord not in quorum:
                # A quorum glb changes only when a member's buffered value
                # does; quorums without this coordinator were evaluated
                # when their members last reported.
                continue
            if quorum <= senders:
                lower_bound = glb_set([buffer[c] for c in sorted(quorum)])
                self._accept_classic(rnd, lower_bound)

    def _detect_collision(self, rnd: RoundId, new_val: CStruct) -> bool:
        """Multicoordinated collision: incompatible c-structs in one round.

        Folds every recorded value into a per-round running lub; a value
        incompatible with *any* previously recorded one is incompatible
        with their lub and vice versa (CS3: a pairwise-compatible set is
        jointly compatible), so one lub per delivery replaces the O(k²)
        pairwise scan.
        """
        if self.config.schedule.is_fast(rnd) or rnd in self._collided:
            return False
        merge = self._p2a_merge.get(rnd)
        if merge is None:
            self._p2a_merge[rnd] = new_val
            return False
        try:
            self._p2a_merge[rnd] = merge.lub(new_val)
            return False
        except IncompatibleError:
            pass
        self._collided.add(rnd)
        self.collisions_detected += 1
        next_rnd = self.config.schedule.next_round(rnd)
        if next_rnd > self.rnd:
            self._advance_round(next_rnd)
            self._send_1b(next_rnd)
        return True

    def _accept_classic(self, rnd: RoundId, lower_bound: CStruct) -> None:
        """Phase2bClassic(a, i): accept ``u``, merging via ⊔ within a round."""
        if rnd < self.rnd:
            return
        if self.vrnd == rnd:
            if lower_bound.leq(self.vval):
                return  # nothing new to accept or report
            try:
                new_value = self.vval.lub(lower_bound)
            except IncompatibleError:
                return
            if new_value == self.vval:
                return
        else:
            new_value = lower_bound
        gained = new_value.command_set() - self.vval.command_set()
        self.commands_accepted += len(gained)
        # Delta hint for learners: the commands this acceptance added, in
        # execution order (advisory; the vote still carries the whole val).
        fresh = tuple(c for c in new_value.linear_extension() if c in gained)
        self._advance_round(rnd)
        self.vrnd = rnd
        self.vval = new_value
        self._persist_vote()
        self._broadcast_2b(fresh)

    # -- phase 2b (fast) ---------------------------------------------------------------

    def on_propose(self, msg: Propose, src: Hashable) -> None:
        if msg.acceptor_quorum is not None and self.pid not in msg.acceptor_quorum:
            return
        if msg.cmd not in self._pending_set:
            self._pending_set.add(msg.cmd)
            self.pending.append(msg.cmd)
        self._try_fast_append()

    def _try_fast_append(self) -> None:
        """Phase2bFast(a): extend vval with proposals in an open fast round."""
        if not self.config.schedule.is_fast(self.rnd) or self.vrnd != self.rnd:
            return
        appended = [cmd for cmd in self.pending if not self.vval.contains(cmd)]
        if not appended:
            return
        grown = self.vval.extend(appended)
        self.fast_accepts += len(appended)
        self.commands_accepted += len(appended)
        self.vval = grown
        self._persist_vote()
        self._broadcast_2b(tuple(appended))

    # -- shared helpers --------------------------------------------------------------

    def _persist_vote(self) -> None:
        self.storage.write_many({"vrnd": self.vrnd, "vval": self.vval})
        self.metrics.custom["acceptor_disk_writes"] += 1

    def _broadcast_2b(self, fresh: tuple[Command, ...] | None = None) -> None:
        vote = Phase2b(self.vrnd, self.vval, self.pid, fresh=fresh)
        self.broadcast(self.config.topology.learners, vote)
        if self.config.send_2b_to_coordinators:
            coords = self.config.topology.coordinator_pids(
                self.config.schedule.coordinators_of(self.vrnd)
            )
            self.broadcast(coords, vote)

    # -- crash-recovery -----------------------------------------------------------------

    def on_crash(self) -> None:
        self.rnd = ZERO
        self.vrnd = ZERO
        self.vval = self.config.bottom
        self.pending = []
        self._pending_set = set()
        self._p2a = {}
        self._p2a_merge = {}
        self._collided = set()

    def on_recover(self) -> None:
        self.vrnd = self.storage.read("vrnd", ZERO)
        self.vval = self.storage.read("vval", self.config.bottom)
        if self.config.reduce_disk_writes:
            mcount = self.storage.read("mcount", 0) + 1
            self.storage.write("mcount", mcount)
            self.rnd = RoundId(mcount=mcount, count=0, coord=-1, rtype=0)
        else:
            self.rnd = self.storage.read("rnd", ZERO)


class GenLearner(Process):
    """Learns ever-growing c-structs from quorums of "2b" messages.

    The learner keeps an *executed frontier*: the set of commands already
    contained in ``learned`` (``_seen``).  On top of it, a per-(round,
    acceptor) *unseen set* tracks which commands of the acceptor's latest
    vote are not yet learned; it is maintained from the ``fresh`` delta the
    acceptor piggybacks on its "2b" (O(|delta|) per delivery) and falls
    back to a full O(n) rescan only when a message gap makes the sizes
    disagree.  Every hot-path decision -- can this vote grow the learned
    struct, which glb candidates are worth a lub, which commands are new
    for the callbacks -- is then a membership test against these
    frontiers.  Redundant "2b" deliveries (quorum echoes, duplicates,
    re-sends) short-circuit in O(delta) before any lattice operation runs.
    """

    def __init__(self, pid: str, sim: Simulation, config: GeneralizedConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.learned: CStruct = config.bottom
        self._latest: dict[RoundId, dict[Hashable, CStruct]] = {}
        self._callbacks: list[Callable[[tuple[Command, ...], CStruct], None]] = []
        # Executed frontier: exactly the commands of self.learned.
        self._seen: set[Command] = set(config.bottom.command_set())
        # Per-acceptor (for the acceptor's most recent round): commands of
        # the recorded vote not yet learned, plus the vote's round and size
        # (the delta-gap detector).  One entry per acceptor -- bounded
        # state, O(acceptors) pruning per learn event; votes from older
        # rounds fall back to an on-demand scan (:meth:`_unseen_of`).
        self._vote_unseen: dict[Hashable, set[Command]] = {}
        self._vote_rnd: dict[Hashable, RoundId] = {}
        self._vote_size: dict[Hashable, int] = {}

    def on_learn(self, callback: Callable[[tuple[Command, ...], CStruct], None]) -> None:
        """Register ``callback(new_commands, learned)`` for learn events."""
        self._callbacks.append(callback)

    def _note_vote(
        self, rnd: RoundId, acceptor: Hashable, vote: CStruct, fresh
    ) -> None:
        """Update the unseen frontier for a newly recorded vote.

        When the acceptor's ``fresh`` delta accounts exactly for the size
        difference since the previously recorded vote of the same round,
        the frontier is updated in O(|fresh|); any gap (dropped or
        reordered "2b", or a round change) forces a full rescan of the
        vote's command set.
        """
        unseen = self._vote_unseen.get(acceptor)
        size = len(vote.command_set())
        if (
            unseen is not None
            and fresh is not None
            and self._vote_rnd.get(acceptor) == rnd
            and self._vote_size.get(acceptor, -1) + len(fresh) == size
        ):
            unseen.update(c for c in fresh if c not in self._seen)
        else:
            self._vote_unseen[acceptor] = {
                c for c in vote.command_set() if c not in self._seen
            }
        self._vote_rnd[acceptor] = rnd
        self._vote_size[acceptor] = size

    def _unseen_of(self, rnd: RoundId, acceptor: Hashable, vote: CStruct):
        """Unseen commands of *vote*: the frontier, or an on-demand scan.

        The maintained frontier covers the acceptor's most recent round;
        a vote from an older round (rare -- late traffic after a round
        change) is scanned directly, which is the pre-frontier cost.
        """
        if self._vote_rnd.get(acceptor) == rnd:
            return self._vote_unseen[acceptor]
        return {c for c in vote.command_set() if c not in self._seen}

    def on_phase2b(self, msg: Phase2b, src: Hashable) -> None:
        votes = self._latest.setdefault(msg.rnd, {})
        # An acceptor's vval grows monotonically within a round (and
        # survives crashes via stable storage), so vote sizes order vote
        # recency: a reordered older "2b" can only be smaller.  The size
        # comparison replaces a per-delivery leq entirely.
        previous = votes.get(msg.acceptor)
        if previous is None or (
            len(previous.command_set()) < len(msg.val.command_set())
        ):
            votes[msg.acceptor] = msg.val
            self._note_vote(msg.rnd, msg.acceptor, msg.val, msg.fresh)
        needed = self.config.quorums.quorum_size(
            fast=self.config.schedule.is_fast(msg.rnd)
        )
        if len(votes) < needed:
            return
        # A quorum glb is bounded above by each member's vote, so only
        # quorums made entirely of votes with unseen commands can grow the
        # learned struct; with fewer such votes than a quorum, nothing can.
        # Deliberate tradeoff: skipped quorums also skip the is_compatible
        # tripwire below, so an agreement violation confined to
        # already-learned commands would not crash here -- the invariant
        # oracles (repro.core.invariants) remain the authoritative check.
        unseen_by_acc = {
            acc: self._unseen_of(msg.rnd, acc, vote) for acc, vote in votes.items()
        }
        growers = {acc for acc, unseen in unseen_by_acc.items() if unseen}
        if len(growers) < needed:
            return
        # Commands that could possibly be new: the union of the growers'
        # unseen frontiers (a quorum glb is below each member's vote, so it
        # cannot contain unseen commands from anywhere else).
        pool: set[Command] = set()
        for acc in growers:
            pool |= unseen_by_acc[acc]
        new_learned = self.learned
        for chosen in self._chosen_candidates(votes, needed, growers):
            chosen_cmds = chosen.command_set()
            if not any(cmd in chosen_cmds for cmd in pool):
                continue  # the glb dropped every unseen command
            try:
                new_learned = new_learned.lub(chosen)
            except IncompatibleError:
                raise AssertionError(
                    f"learner {self.pid}: chosen value incompatible with learned "
                    f"({chosen} vs {new_learned})"
                ) from None
        if new_learned is self.learned:
            return
        if (
            len(new_learned.command_set()) == len(self._seen)
            and new_learned == self.learned
        ):
            return
        fresh = tuple(
            cmd for cmd in new_learned.linear_extension() if cmd not in self._seen
        )
        self.learned = new_learned
        self._seen.update(fresh)
        for unseen in self._vote_unseen.values():
            unseen.difference_update(fresh)
        for cmd in fresh:
            self.metrics.record_learn(cmd, self.pid, self.now)
        if self.config.send_2b_to_coordinators and fresh:
            # Progress report for the Section 4.3 stuck-command detection.
            self.broadcast(
                self.config.topology.coordinators, Learned(fresh, self.pid)
            )
        for callback in self._callbacks:
            callback(fresh, new_learned)

    def _chosen_candidates(
        self, votes: dict[Hashable, CStruct], needed: int, growers: set[Hashable]
    ) -> list[CStruct]:
        """Glbs over acceptor quorums among the reporting acceptors.

        Every glb over a full quorum is *chosen* (Definition 3), hence
        learnable.  Only quorums drawn from *growers* (acceptors whose vote
        contains an unseen command) are considered -- any other quorum's glb
        is below an exhausted vote and cannot grow the learned struct.  All
        such quorums are enumerated when cheap; otherwise the quorum of
        acceptors with the largest accepted c-structs is used (sound -- any
        quorum works -- just possibly less eager).
        """
        senders = sorted(growers)
        if comb(len(senders), needed) <= self.config.learner_enumeration_limit:
            groups = combinations(senders, needed)
        else:
            by_size = sorted(
                senders, key=lambda acc: len(votes[acc].command_set()), reverse=True
            )
            groups = [tuple(sorted(by_size[:needed]))]
        return [glb_set([votes[acc] for acc in group]) for group in groups]


@dataclass
class GeneralizedCluster:
    """A deployed generalized instance plus driving helpers."""

    sim: Simulation
    config: GeneralizedConfig
    proposers: list[GenProposer]
    coordinators: list[GenCoordinator]
    acceptors: list[GenAcceptor]
    learners: list[GenLearner]
    _proposal_index: int = field(default=0)

    def propose(self, cmd: Command, delay: float = 0.0, proposer: int | None = None) -> None:
        if proposer is None:
            proposer = self._proposal_index % len(self.proposers)
            self._proposal_index += 1
        agent = self.proposers[proposer]
        self.sim.schedule(delay, lambda: agent.propose(cmd))

    def start_round(self, rnd: RoundId, coordinator: int | None = None, delay: float = 0.0) -> None:
        index = rnd.coord if coordinator is None else coordinator
        agent = self.coordinators[index]
        self.sim.schedule(delay, lambda: agent.start_round(rnd))

    def set_load_balancing(self, enabled: bool) -> None:
        for proposer in self.proposers:
            proposer.balance_load = enabled

    def learned_structs(self) -> list[CStruct]:
        return [l.learned for l in self.learners]

    def everyone_learned(self, cmds) -> bool:
        return all(
            all(l.learned.contains(cmd) for cmd in cmds) for l in self.learners
        )

    def run_until_learned(self, cmds, timeout: float = 2_000.0) -> bool:
        cmds = list(cmds)
        return self.sim.run_until(lambda: self.everyone_learned(cmds), timeout=timeout)

    def total_acceptor_disk_writes(self) -> int:
        return sum(a.storage.write_count for a in self.acceptors)


def build_generalized(
    sim: Simulation,
    bottom: CStruct,
    n_proposers: int = 2,
    n_coordinators: int = 3,
    n_acceptors: int = 3,
    n_learners: int = 2,
    schedule: RoundSchedule | None = None,
    f: int | None = None,
    e: int | None = None,
    liveness: LivenessConfig | None = None,
    reduce_disk_writes: bool = True,
) -> GeneralizedCluster:
    """Deploy a Multicoordinated Generalized Paxos instance on *sim*."""
    topology = Topology.build(n_proposers, n_coordinators, n_acceptors, n_learners)
    quorums = QuorumSystem(topology.acceptors, f=f, e=e)
    if schedule is None:
        schedule = RoundSchedule(range(n_coordinators), recovery_rtype=1)
    config = GeneralizedConfig(
        topology=topology,
        quorums=quorums,
        schedule=schedule,
        bottom=bottom,
        liveness=liveness,
        reduce_disk_writes=reduce_disk_writes,
    )
    return GeneralizedCluster(
        sim=sim,
        config=config,
        proposers=[GenProposer(pid, sim, config) for pid in topology.proposers],
        coordinators=[
            GenCoordinator(pid, sim, config, index)
            for index, pid in enumerate(topology.coordinators)
        ],
        acceptors=[GenAcceptor(pid, sim, config) for pid in topology.acceptors],
        learners=[GenLearner(pid, sim, config) for pid in topology.learners],
    )
