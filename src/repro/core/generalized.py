"""Multicoordinated Generalized Paxos (Section 3.2).

The generalized algorithm agrees on an ever-growing c-struct instead of a
single value, so one instance implements state-machine replication: every
proposed command is eventually *contained* in every learner's learned
c-struct, and learned c-structs are mutually compatible.

Round taxonomy (the engine subsumes the whole Paxos family):

* single-coordinated classic rounds + ``AlwaysConflict`` histories
  ≈ Classic Paxos as a total-order broadcast protocol;
* single-coordinated classic + fast rounds ≈ Generalized Paxos
  (Section 2.3), deployed by :func:`repro.protocols.generalized.
  build_generalized_paxos`;
* multicoordinated classic rounds -- the paper's contribution: phase 2a is
  executed by every coordinator of the round, and an acceptor accepts the
  *glb* of the c-structs received from a full coordinator quorum
  (``u = ⊓ L2aVals``), extending its previous value with ``⊔`` when
  compatible.

Collisions (Section 4.2): in a multicoordinated round, coordinators that
receive commuting commands in different orders forward *compatible*
c-structs, and the glb simply defers the commands that have not yet reached
a full quorum -- no harm done.  Only *conflicting* commands received in
different orders make the forwarded c-structs incompatible; acceptors
detect this before accepting anything (no wasted disk write, unlike
fast-round collisions) and react as if a phase "1a" for the next round had
been received.

Liveness (Section 4.3): coordinators optionally run the failure detector of
:mod:`repro.core.liveness`; the leader starts a higher (by default
single-coordinated) round when commands stay unserved past a timeout,
which covers leader crashes, coordinator-quorum loss and persistent
collisions with one mechanism.

Production layers (engine parity with :mod:`repro.smr.instances`)
-----------------------------------------------------------------

Three opt-in layers bring the generalized engine to parity with the
multi-instance engine; all are off by default and change no protocol
outcome, only message/lattice-operation counts and memory:

* **C-struct-aware batching** (:class:`GenBatchingConfig`).  Proposers
  accumulate commands and ship them as one
  :class:`repro.core.messages.ProposeBatch`; coordinators append the whole
  group to their ``cval`` with a single ``extend`` and send *one* phase
  "2a" per batch (and optionally coalesce single proposals on a flush
  timer), so a burst of *m* commands costs one lattice extension and one
  2a/2b round trip instead of *m* of each.  Fast rounds batch the same
  way at the acceptors.

* **Retransmission** (:class:`repro.core.checkpoint.RetransmitConfig`).
  C-structs are cumulative -- every 2a/2b re-carries the sender's whole
  current value -- so loss only strands the *tail* of a run.  Three
  re-drivers heal it: proposers journal unacked commands and re-propose on
  exponential backoff until a learner reports the command learned
  (``Learned`` acks; coordinators re-ack proposals of already-learned
  commands), coordinators re-announce their current 2a while commands stay
  unserved, and learners periodically poll the acceptors
  (:class:`repro.core.messages.CatchUp`) for their current votes.

* **Stable-prefix checkpointing** (:class:`repro.core.checkpoint.
  CheckpointConfig`).  Every learned command is *stable* -- decided and
  delivered at that learner -- so learners periodically checkpoint their
  replica at the current learned history, journal it under one overwritten
  key and advertise it (``ICheckpoint`` carrying the prefix's command
  *set*: histories interleave commuting commands, so a stable prefix is a
  sub-lattice, not a sequence position).  Every role folds advertisements
  into the collective safe frontier (:class:`repro.core.checkpoint.
  FrontierTracker` over prefix sizes; the operative base is the
  *intersection* of the contributing learners' sets) and garbage-collects
  below it: histories are split with
  :meth:`repro.cstruct.history.CommandHistory.stable_split` and only the
  tail above the base is retained -- in memory, in messages and in the
  acceptors' delta journals.  Laggards below the truncation floor (e.g. a
  learner recovering from a crash after the cluster truncated past its
  checkpoint) are healed by the chunked, resumable snapshot install of the
  PR-4 machinery (``ISnapshotRequest``/``ISnapshotChunk``) followed by
  ordinary vote replay.  Known bound: per-command *set* state still grows
  with history -- the stable base and learners' seen-sets in memory (the
  client-session-table analogue the multi-instance engine documents as a
  follow-up), and the `members` payload of checkpoint advertisements plus
  the full delivered sequence in snapshots/installs on the wire (a real
  implementation ships a digest/id-interval and fetches on demand; see
  ROADMAP).  What E13 pins as window-bounded is the *lattice* state --
  histories, digraphs, vote journals -- which is what every per-event
  lattice operation walks.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from itertools import combinations
from math import comb
from typing import Callable, Hashable

from repro.core.checkpoint import (
    CheckpointConfig,
    FrontierTracker,
    ICheckpoint,
    ISnapshotChunk,
    ISnapshotRequest,
    ITruncated,
    RetransmitConfig,
    SnapshotInstaller,
    serve_snapshot,
)
from repro.core.liveness import FailureDetector, Heartbeat, LivenessConfig
from repro.core.messages import (
    CatchUp,
    Learned,
    Nack,
    Phase1a,
    Phase1b,
    Phase2a,
    Phase2aDelta,
    Phase2b,
    Phase2bDelta,
    Propose,
    ProposeBatch,
    ResyncRequest,
    VoteStamp,
)
from repro.core.provedsafe import proved_safe
from repro.core.quorums import QuorumSystem
from repro.core.rounds import ZERO, RoundId, RoundSchedule
from repro.core.sessions import (
    SessionConfig,
    SessionDedup,
    members_intersection,
    members_union,
)
from repro.core.topology import Topology
from repro.cstruct.base import CStruct, IncompatibleError, glb_set
from repro.cstruct.commands import Command
from repro.cstruct.digest import DeltaTrail, digest_add, digest_of
from repro.core.runtime import Process, Runtime


@dataclass
class GenBatchingConfig:
    """Batching knobs for the generalized engine.

    Attributes:
        max_batch: Commands per :class:`~repro.core.messages.ProposeBatch`;
            reaching it flushes the proposer's buffer immediately.
        flush_interval: Virtual-time deadline after the first buffered
            command at which a partial batch is flushed anyway (also the
            coordinators' coalescing deadline).
        coordinator_group: Coordinators additionally coalesce *single*
            proposals (from unbatched proposers, retransmissions, gossip)
            for up to ``flush_interval``, so stragglers still ride a
            grouped phase "2a" instead of each paying their own.
            Batched proposals always forward immediately -- the group
            already exists.
    """

    max_batch: int = 8
    flush_interval: float = 2.0
    coordinator_group: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.flush_interval <= 0:
            raise ValueError("flush_interval must be positive")


@dataclass
class DeltaConfig:
    """Delta wire protocol knobs (generalized engine).

    With a ``DeltaConfig`` the cumulative hot-path messages become
    streams: coordinators ship :class:`~repro.core.messages.Phase2aDelta`
    suffixes against their last announced 2a state, acceptors ship
    :class:`~repro.core.messages.Phase2bDelta` suffixes against their
    last broadcast vote, and the learners' catch-up polls carry
    (size, digest) stamps answered by an O(1)
    :class:`~repro.core.messages.VoteStamp` when nothing is missing.
    Any stream gap falls back to the unchanged cumulative protocol via
    :class:`~repro.core.messages.ResyncRequest` -- the delta layer
    changes bytes-on-wire and per-event work, never outcomes.

    Attributes:
        trail: Accept events each acceptor keeps in its delta trail
            (:class:`repro.cstruct.digest.DeltaTrail`); a stamped poll
            whose base is still inside the trail is answered with the
            exact missing suffix instead of the full vote.
        idle_poll_every: A learner polls an acceptor it has confirmed
            current only every this-many catch-up ticks (the O(1)
            idle-chatter knob); acceptors with unconfirmed state are
            polled every tick as before.
    """

    trail: int = 128
    idle_poll_every: int = 4

    def __post_init__(self) -> None:
        if self.trail < 1:
            raise ValueError("trail must be at least 1")
        if self.idle_poll_every < 1:
            raise ValueError("idle_poll_every must be at least 1")


@dataclass
class GeneralizedConfig:
    """Static configuration of one generalized deployment."""

    topology: Topology
    quorums: QuorumSystem
    schedule: RoundSchedule
    bottom: CStruct
    send_2b_to_coordinators: bool = True
    reduce_disk_writes: bool = True
    liveness: LivenessConfig | None = None
    learner_enumeration_limit: int = 64
    batching: GenBatchingConfig | None = None
    retransmit: RetransmitConfig | None = None
    checkpoint: CheckpointConfig | None = None
    delta: DeltaConfig | None = None
    sessions: SessionConfig | None = None

    def __post_init__(self) -> None:
        if tuple(sorted(self.quorums.acceptors)) != tuple(sorted(self.topology.acceptors)):
            raise ValueError("quorum system must be defined over the topology's acceptors")
        if self.learner_enumeration_limit < 1:
            raise ValueError("learner_enumeration_limit must be at least 1")
        if self.checkpoint is not None:
            if self.retransmit is None:
                # Truncation makes the engine depend on the reliability
                # layer: once histories are truncated, a missed message can
                # only be healed by catch-up polling or snapshot install,
                # and those re-drivers live behind RetransmitConfig.
                raise ValueError("checkpoint requires retransmit (the catch-up layer)")
            if (
                self.checkpoint.gc_quorum is not None
                and self.checkpoint.gc_quorum > len(self.topology.learners)
            ):
                raise ValueError(
                    f"gc_quorum {self.checkpoint.gc_quorum} exceeds the"
                    f" {len(self.topology.learners)} learners"
                )
            if not hasattr(self.bottom, "stable_split"):
                # Truncation is defined on the history lattice (stable
                # prefixes are downward-closed sub-histories); other
                # c-struct sets have no such op.
                raise ValueError(
                    "checkpointing requires a c-struct with stable-prefix "
                    "support (CommandHistory)"
                )
        if self.delta is not None and self.retransmit is None:
            # The delta streams repair through the reliability layer
            # (stamped catch-up polls, resync answers); without it a
            # single lost delta would strand the stream forever.
            raise ValueError("delta requires retransmit (the repair layer)")
        if self.sessions is not None and self.checkpoint is None:
            # Bounded dedup prunes the delivered tail at snapshot time
            # and persists the session table inside checkpoints.
            raise ValueError("sessions requires checkpoint (snapshot carrier)")


class _StableState:
    """Per-process view of the cluster's stable (checkpointed) prefix.

    Folds ``ICheckpoint`` advertisements into the collective safe bound
    (:class:`FrontierTracker` over advertised prefix *sizes*) and derives
    the operative GC base: the *intersection* of the member sets of the
    learners whose frontiers justify the bound.  The intersection is what
    makes truncation safe under commuting-command divergence -- a command
    is only dropped once every counted learner has it in a durable
    checkpoint, so no counted learner can be stranded waiting for it.
    ``union`` accumulates every advertised-stable command and is used to
    reconcile transient base skew between processes (a command stable
    *somewhere durable* can always be discounted from a compatibility
    check).  Bases grow along a chain: a learner's later checkpoint
    contains its earlier one, so intersections only ever widen.
    """

    def __init__(self, config: GeneralizedConfig) -> None:
        self.tracker = FrontierTracker.from_config(config)
        # Member sets are frozensets, or compact SessionMembers claims
        # under SessionConfig -- everything below goes through the
        # representation-agnostic members_union/members_intersection.
        self.members: dict[Hashable, object] = {}
        self.union = frozenset()
        self.bound = 0
        self.base = frozenset()

    @property
    def enabled(self) -> bool:
        return self.tracker is not None

    def fold(self, src: Hashable, frontier: int, members):
        """Record one advertisement; return the new base when it grows."""
        if self.tracker is None:
            return None
        self.tracker.update(src, frontier)
        if members:
            previous = self.members.get(src)
            if previous is None or len(members) > len(previous):
                self.members[src] = members
                self.union = members_union(self.union, members)
        bound = self.tracker.safe_bound()
        if bound <= self.bound:
            return None
        sets = [self.members.get(pid) for pid in self.tracker.contributors(bound)]
        if not sets or any(s is None for s in sets):
            return None  # a contributor's member set is still in flight
        self.bound = bound
        base = sets[0]
        for other in sets[1:]:
            base = members_intersection(base, other)
        if len(base) <= len(self.base):
            return None
        self.base = base
        return base


@dataclass
class _GenRetry:
    """Per-command retransmission bookkeeping at a proposer."""

    timer: object
    interval: float
    attempts: int = 0


class GenProposer(Process):
    """Proposes commands; optionally picks per-command quorums (Section 4.1).

    With batching enabled the proposer is the *batcher*: commands are
    buffered and shipped as one :class:`ProposeBatch` when the buffer
    reaches ``max_batch`` or ``flush_interval`` after the first buffered
    command, whichever comes first.  With retransmission enabled every
    shipped command is journalled and re-proposed on a backoff timer until
    some learner reports it learned (``Learned``) -- c-struct cumulativeness
    plus the learners' catch-up polling then spread it everywhere.
    """

    def __init__(self, pid: str, sim: Runtime, config: GeneralizedConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.balance_load = False
        self.balance_fast = False  # pick fast-sized acceptor quorums instead
        self.retransmissions = 0
        self._buffer: list[Command] = []
        self._buffer_set: set[Command] = set()
        self._flush_timer = None
        self._unacked: dict[Command, _GenRetry] = {}
        self._stable = _StableState(config)

    def propose(self, cmd: Command) -> None:
        self.metrics.record_propose(cmd, self.now)
        if self.config.batching is None:
            self._ship((cmd,))
            return
        if cmd in self._buffer_set or cmd in self._unacked:
            return  # already buffered or in retransmission flight
        self._buffer.append(cmd)
        self._buffer_set.add(cmd)
        self._journal_buffer()
        if len(self._buffer) >= self.config.batching.max_batch:
            self.flush()
        elif self._flush_timer is None:
            self._flush_timer = self.set_timer(
                self.config.batching.flush_interval, self._flush_deadline
            )

    def flush(self) -> None:
        """Ship the buffered partial batch now (no-op when empty)."""
        if self._flush_timer is not None:
            self.drop_timer(self._flush_timer)
            self._flush_timer = None
        if not self._buffer:
            return
        cmds = tuple(self._buffer)
        self._buffer = []
        self._buffer_set = set()
        self._journal_buffer()
        self._ship(cmds)

    def _flush_deadline(self) -> None:
        self._flush_timer = None
        self.flush()

    def _ship(self, cmds: tuple[Command, ...]) -> None:
        coord_quorum = None
        acceptor_quorum = None
        if self.balance_load:
            coord_quorum, acceptor_quorum = self._pick_quorums()
        if len(cmds) == 1 and self.config.batching is None:
            msg = Propose(cmds[0], coord_quorum=coord_quorum, acceptor_quorum=acceptor_quorum)
        else:
            msg = ProposeBatch(cmds, coord_quorum=coord_quorum, acceptor_quorum=acceptor_quorum)
        # Every coordinator hears the proposal (the leader's stuck
        # detection needs it); only the chosen quorum forwards it.
        self.broadcast(self.config.topology.coordinators, msg)
        self.broadcast(self.config.topology.acceptors, msg)
        if self.config.retransmit is not None:
            changed = False
            for cmd in cmds:
                changed = self._register_unacked(cmd) or changed
            if changed:
                self._journal_unacked()

    def _pick_quorums(self) -> tuple[frozenset[int], frozenset[str]]:
        """Uniformly choose one coordinator quorum and one acceptor quorum."""
        rng = self.sim.rng
        coords = list(self.config.schedule.coordinators)
        c_size = len(coords) // 2 + 1
        coord_quorum = frozenset(rng.sample(coords, c_size))
        accs = list(self.config.topology.acceptors)
        a_size = self.config.quorums.quorum_size(fast=self.balance_fast)
        acceptor_quorum = frozenset(rng.sample(accs, a_size))
        return coord_quorum, acceptor_quorum

    # -- retransmission ----------------------------------------------------------

    def _register_unacked(self, cmd: Command) -> bool:
        retransmit = self.config.retransmit
        if retransmit is None or cmd in self._unacked:
            return False
        state = _GenRetry(timer=None, interval=retransmit.retry_interval)
        state.timer = self.set_timer(state.interval, lambda: self._retry(cmd))
        self._unacked[cmd] = state
        return True

    def _retry(self, cmd: Command) -> None:
        state = self._unacked.get(cmd)
        retransmit = self.config.retransmit
        if state is None or retransmit is None:
            return
        state.attempts += 1
        state.interval = min(state.interval * retransmit.backoff, retransmit.max_interval)
        self.retransmissions += 1
        # Singles on the retry path: retries are rare and coordinator-side
        # grouping coalesces them with any concurrent traffic.
        msg = Propose(cmd)
        self.broadcast(self.config.topology.coordinators, msg)
        self.broadcast(self.config.topology.acceptors, msg)
        state.timer = self.set_timer(state.interval, lambda: self._retry(cmd))

    def on_learned(self, msg: Learned, src: Hashable) -> None:
        """A learner (or coordinator echo) reports commands learned: retire."""
        changed = False
        for cmd in msg.cmds:
            changed = self._retire(cmd) or changed
        if changed:
            self._journal_unacked()

    def _retire(self, cmd: Command) -> bool:
        state = self._unacked.pop(cmd, None)
        if state is None:
            return False
        if state.timer is not None:
            self.drop_timer(state.timer)
        return True

    def on_icheckpoint(self, msg: ICheckpoint, src: Hashable) -> None:
        """Checkpointed commands are learned by policy: retire them."""
        base = self._stable.fold(src, msg.frontier, msg.members)
        if base is None:
            return
        changed = False
        for cmd in [c for c in self._unacked if c in base]:
            changed = self._retire(cmd) or changed
        if changed:
            self._journal_unacked()

    def _journal_unacked(self) -> None:
        self.storage.write("gen_unacked", tuple(self._unacked))

    def _journal_buffer(self) -> None:
        if self.config.retransmit is not None:
            self.storage.write("gen_batch", tuple(self._buffer))

    # -- crash-recovery -----------------------------------------------------------

    def on_crash(self) -> None:
        self._buffer = []
        self._buffer_set = set()
        self._flush_timer = None
        self._unacked = {}
        self._stable = _StableState(self.config)

    def on_recover(self) -> None:
        if self.config.retransmit is None:
            return
        # Re-ship everything journalled: unacked commands and the batch
        # buffer lost mid-fill.  Duplicates are deduplicated end to end.
        buffered = self.storage.read("gen_batch", ())
        unacked = self.storage.read("gen_unacked", ())
        for cmd in buffered:
            if cmd not in unacked:
                self.propose(cmd)
        self.flush()
        for cmd in unacked:
            self._register_unacked(cmd)
            msg = Propose(cmd)
            self.broadcast(self.config.topology.coordinators, msg)
            self.broadcast(self.config.topology.acceptors, msg)
        self._journal_unacked()


class GenCoordinator(Process):
    """A coordinator of the generalized algorithm."""

    # Coordinators keep no stable state (Section 4.4): a recovered
    # coordinator simply starts a higher round, so everything it tracks --
    # round bookkeeping, proposal caches, quorum buffers, stats -- is
    # deliberately lost on crash.
    VOLATILE = {
        "_acceptor_hint",
        "_fwd_timer",
        "_known",
        "_last_round_change",
        "_learned_cmds",
        "_p1b",
        "_sent2a",
        "_unforwarded",
        "_unserved",
        "crnd",
        "cval",
        "highest_seen",
        "known_cmds",
        "reannounced_2a",
        "redriven_1a",
        "resyncs_answered",
        "rounds_started",
    }

    def __init__(
        self, pid: str, sim: Runtime, config: GeneralizedConfig, index: int
    ) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.index = index
        self.crnd: RoundId = ZERO
        self.cval: CStruct | None = None
        self.highest_seen: RoundId = ZERO
        self.known_cmds: list[Command] = []
        self._known: set[Command] = set()  # mirror of known_cmds
        # Commands not yet appended to cval: _forward_pending drains this
        # delta instead of rescanning the whole known_cmds list per event.
        self._unforwarded: list[Command] = []
        self.rounds_started = 0
        self.reannounced_2a = 0
        self.redriven_1a = 0
        self.resyncs_answered = 0
        # Delta mode: the (rnd, size, digest) stamp of the last announced
        # 2a state -- the base the next Phase2aDelta extends.  None forces
        # the next announcement to be a full cumulative Phase2a (round
        # change, GC, recovery).
        self._sent2a: tuple[RoundId, int, int] | None = None
        self._p1b: dict[RoundId, dict[Hashable, Phase1b]] = {}
        self._acceptor_hint: dict[Command, frozenset[str]] = {}
        self._fwd_timer = None
        self._stable = _StableState(config)
        # Liveness state.
        self._fd: FailureDetector | None = None
        self._unserved: dict[Command, float] = {}
        self._learned_cmds: set[Command] = set()
        self._last_round_change = 0.0
        if config.liveness is not None:
            peers = list(enumerate(config.topology.coordinators))
            self._fd = FailureDetector(
                self, index, peers, config.liveness, on_check=self._progress_check
            )
            self._fd.start()
        if config.retransmit is not None:
            self.set_periodic_timer(
                config.retransmit.gossip_interval, self._reliability_tick
            )

    # -- round management ------------------------------------------------------

    def start_round(self, rnd: RoundId) -> None:
        """Phase1a(c, i)."""
        if not self.config.schedule.is_coordinator_of(self.index, rnd):
            raise ValueError(f"coordinator {self.index} does not coordinate {rnd}")
        if rnd <= self.crnd:
            raise ValueError(f"round {rnd} is not above current round {self.crnd}")
        self._adopt(rnd)
        self.rounds_started += 1
        self._last_round_change = self.now
        self.broadcast(self.config.topology.acceptors, Phase1a(rnd))

    def _adopt(self, rnd: RoundId) -> None:
        self.crnd = rnd
        self.cval = None
        self._sent2a = None
        self.highest_seen = max(self.highest_seen, rnd)

    # -- proposals (Phase2aClassic) ------------------------------------------------

    def on_propose(self, msg: Propose, src: Hashable) -> None:
        self._note_proposal(msg.cmd, msg.coord_quorum, msg.acceptor_quorum, src)
        self._queue_forward()

    def on_proposebatch(self, msg: ProposeBatch, src: Hashable) -> None:
        for cmd in msg.cmds:
            self._note_proposal(cmd, msg.coord_quorum, msg.acceptor_quorum, src)
        # The batch already groups its commands; forward immediately (one
        # extend, one 2a), flushing any coalescing singles along with it.
        self._flush_forward()

    def _note_proposal(
        self, cmd: Command, coord_quorum, acceptor_quorum, src: Hashable
    ) -> None:
        if cmd in self._stable.base or cmd in self._learned_cmds:
            if self.config.retransmit is not None:
                # The proposer is retrying a command that is already
                # learned (its ack was lost): re-ack instead of re-serving.
                self.send(src, Learned((cmd,), self.pid))
            return
        if cmd not in self._unserved:
            self._unserved[cmd] = self.now
        if coord_quorum is not None and self.index not in coord_quorum:
            return
        if cmd not in self._known:
            self._known.add(cmd)
            self.known_cmds.append(cmd)
            self._unforwarded.append(cmd)
            if acceptor_quorum is not None:
                self._acceptor_hint[cmd] = acceptor_quorum

    def _queue_forward(self) -> None:
        """Forward now, or coalesce singles until the batch deadline."""
        batching = self.config.batching
        if batching is None or not batching.coordinator_group:
            self._forward_pending()
            return
        if len(self._unforwarded) >= batching.max_batch:
            self._flush_forward()
            return
        if self._unforwarded and self._fwd_timer is None:
            self._fwd_timer = self.set_timer(
                batching.flush_interval, self._flush_forward
            )

    def _flush_forward(self) -> None:
        """Forward the coalesced group now (public via cluster.flush())."""
        if self._fwd_timer is not None:
            self.drop_timer(self._fwd_timer)
            self._fwd_timer = None
        self._forward_pending()

    def _forward_pending(self) -> None:
        """Append the unforwarded delta to cval and send the grown c-struct.

        Only the suffix of commands not yet in ``cval`` is examined, so a
        burst of proposals costs O(new·conflicts) lattice work instead of
        rescanning the entire command history per proposal -- and with
        batching the whole group is appended by a *single* ``extend`` and
        announced by a single phase "2a".
        """
        if self.cval is None or self.crnd == ZERO:
            return
        if self.config.schedule.is_fast(self.crnd):
            return  # proposers talk to acceptors directly in fast rounds
        if not self.config.schedule.is_coordinator_of(self.index, self.crnd):
            return
        if not self._unforwarded:
            return
        pending = self._unforwarded
        self._unforwarded = []
        appended = [cmd for cmd in pending if not self.cval.contains(cmd)]
        if not appended:
            return
        grown = self.cval.extend(appended)
        self.cval = grown
        for cmd in appended:
            self.metrics.count_command_handled(self.pid)
        if (
            self.config.delta is not None
            and self._sent2a is not None
            and self._sent2a[0] == self.crnd
        ):
            # Ship only the unsent suffix against the announced stream.
            # Delta streams are broadcast to every acceptor (quorum hints
            # would fork per-acceptor mirrors of one stream).
            rnd0, size0, digest0 = self._sent2a
            self._sent2a = (
                self.crnd, size0 + len(appended), digest_add(digest0, appended)
            )
            self.broadcast(
                self.config.topology.acceptors,
                Phase2aDelta(self.crnd, size0, digest0, tuple(appended), self.index),
            )
            return
        targets = (
            self.config.topology.acceptors
            if self.config.delta is not None
            else self._targets_for(appended)
        )
        self.broadcast(targets, Phase2a(self.crnd, grown, self.index))
        self._note_sent_2a()

    def _note_sent_2a(self) -> None:
        """Record the stream stamp of the state just announced in full."""
        if self.config.delta is None or self.cval is None:
            return
        cmds = self.cval.command_set()
        self._sent2a = (self.crnd, len(cmds), digest_of(cmds))

    def _targets_for(self, appended: list[Command]) -> tuple[str, ...]:
        """Acceptors to notify: the union of the commands' quorum hints."""
        hints = [self._acceptor_hint.get(cmd) for cmd in appended]
        if any(hint is None for hint in hints):
            return self.config.topology.acceptors
        union: set[str] = set()
        for hint in hints:
            union |= hint
        return tuple(sorted(union))

    # -- phase 1b / Phase2Start ---------------------------------------------------

    def on_phase1b(self, msg: Phase1b, src: Hashable) -> None:
        rnd = msg.rnd
        self.highest_seen = max(self.highest_seen, rnd)
        if not self.config.schedule.is_coordinator_of(self.index, rnd):
            return
        if rnd > self.crnd:
            self._adopt(rnd)
        if rnd != self.crnd or self.cval is not None:
            return
        self._p1b.setdefault(rnd, {})[msg.acceptor] = msg
        msgs = self._p1b[rnd]
        if len(msgs) < self.config.quorums.classic_quorum_size:
            return
        self._phase2start(msgs)

    def _phase2start(self, msgs: dict[Hashable, Phase1b]) -> None:
        """Pick ``v = w • σ`` with ``w ∈ ProvedSafe(Q, 1bMsg)`` and send it."""
        if self._stable.enabled and self._stable.base:
            # Normalize reported votes into this coordinator's base frame:
            # acceptors may lag behind in truncation and report votes still
            # carrying stable-prefix commands.
            msgs = {
                acc: replace(m, vval=m.vval.without(self._stable.base))
                for acc, m in msgs.items()
            }
        picks = proved_safe(self.config.quorums, msgs, self.config.schedule.is_fast)
        value = max(picks, key=lambda v: (len(v.command_set()), str(v)))
        if not self.config.schedule.is_fast(self.crnd):
            value = value.extend(
                cmd for cmd in self.known_cmds if not value.contains(cmd)
            )
            self._unforwarded = []  # everything known is now in cval
        self.cval = value
        self.broadcast(
            self.config.topology.acceptors, Phase2a(self.crnd, value, self.index)
        )
        self._note_sent_2a()

    # -- monitoring / liveness ----------------------------------------------------

    def on_phase2b(self, msg: Phase2b, src: Hashable) -> None:
        self.highest_seen = max(self.highest_seen, msg.rnd)

    def on_phase2bdelta(self, msg: Phase2bDelta, src: Hashable) -> None:
        self.highest_seen = max(self.highest_seen, msg.rnd)

    def on_resyncrequest(self, msg: ResyncRequest, src: Hashable) -> None:
        """An acceptor's 2a mirror diverged from our stream: resend it all.

        The full cumulative Phase2a resets the requester's mirror; our
        stream stamp is unchanged (the announced state did not move).
        """
        if self.config.delta is None or self.cval is None or self.crnd == ZERO:
            return
        if self.config.schedule.is_fast(self.crnd):
            return
        if not self.config.schedule.is_coordinator_of(self.index, self.crnd):
            return
        self.resyncs_answered += 1
        # Unicast only: _sent2a still stamps the last *broadcast* state,
        # which is what every other acceptor's mirror tracks.
        self.send(src, Phase2a(self.crnd, self.cval, self.index))

    def on_learned(self, msg: Learned, src: Hashable) -> None:
        """A learner's progress report: these commands need no recovery."""
        for cmd in msg.cmds:
            self._learned_cmds.add(cmd)
            self._unserved.pop(cmd, None)

    def on_heartbeat(self, msg: Heartbeat, src: Hashable) -> None:
        if self._fd is not None:
            self._fd.on_heartbeat(msg)

    def on_nack(self, msg: Nack, src: Hashable) -> None:
        self.highest_seen = max(self.highest_seen, msg.higher)
        if (
            self.config.retransmit is not None
            and msg.higher > self.crnd
            and not self.config.schedule.is_fast(msg.higher)
            and self.config.schedule.is_coordinator_of(self.index, msg.higher)
        ):
            # An acceptor already advanced to a classic round we
            # coordinate (its 1b to us was lost): adopt it so the
            # reliability tick's 1a re-drive targets the round the
            # acceptors are actually in, instead of re-announcing a stale
            # one forever.  Fast-typed rounds are excluded: a recovered
            # acceptor's §4.4 MCount-bump watermark ⟨m:0,c-1,t0⟩ reports
            # as fast, is nobody's working round, and must be out-raced
            # by the liveness layer, not adopted.
            self._adopt(msg.higher)

    def is_leader(self) -> bool:
        return self._fd.is_leader() if self._fd is not None else self.index == 0

    def _reliability_tick(self) -> None:
        """Re-drive the in-flight tail: flush stragglers, re-announce.

        A lost 2a is healed for free by the *next* one (cval is
        cumulative); the re-announce covers the case where no next one is
        coming -- the tail of a run, or a lull -- while any command this
        coordinator served remains unlearned.  A coordinator stuck in
        phase 1 (``cval is None``: a round change whose 1a or 1b messages
        were lost) re-sends its 1a instead -- acceptors answer duplicate
        current-round 1as with a fresh 1b, so phase 1 completes on any
        fair-lossy link.
        """
        if self._unforwarded:
            self._flush_forward()
        if (
            self.crnd == ZERO
            or not self._unserved
            or self.config.schedule.is_fast(self.crnd)
            or not self.config.schedule.is_coordinator_of(self.index, self.crnd)
        ):
            return
        if self.cval is not None:
            self.reannounced_2a += 1
            if (
                self.config.delta is not None
                and self._sent2a is not None
                and self._sent2a[0] == self.crnd
            ):
                # O(1) re-announcement: an empty delta re-asserts the
                # stream head; an acceptor that missed something answers
                # with a resync request instead of silently diverging.
                rnd0, size0, digest0 = self._sent2a
                self.broadcast(
                    self.config.topology.acceptors,
                    Phase2aDelta(self.crnd, size0, digest0, (), self.index),
                )
            else:
                self.broadcast(
                    self.config.topology.acceptors,
                    Phase2a(self.crnd, self.cval, self.index),
                )
                self._note_sent_2a()
        else:
            self.redriven_1a += 1
            self.broadcast(self.config.topology.acceptors, Phase1a(self.crnd))

    def _progress_check(self) -> None:
        """Leader-only: start a recovery round when commands stay unserved."""
        liveness = self.config.liveness
        if liveness is None or not self.is_leader():
            return
        if self.now - self._last_round_change < liveness.stuck_timeout:
            return
        stuck = [
            cmd
            for cmd, since in self._unserved.items()
            if self.now - since > liveness.stuck_timeout
        ]
        if not stuck:
            return
        base = max(self.highest_seen, self.crnd)
        rnd = RoundId(
            mcount=base.mcount,
            count=base.count + 1,
            coord=self.index,
            rtype=liveness.recovery_rtype,
        )
        self.start_round(rnd)

    # -- checkpointing / GC ---------------------------------------------------------

    def on_icheckpoint(self, msg: ICheckpoint, src: Hashable) -> None:
        base = self._stable.fold(src, msg.frontier, msg.members)
        if base is not None:
            self._apply_gc(base)

    def _apply_gc(self, base) -> None:
        """Retire every stable-prefix command from the working state."""
        if self.cval is not None:
            self.cval = self.cval.without(base)
            # Truncation rewrites the announced state: restart the delta
            # stream with a full announcement.
            self._sent2a = None
        self.known_cmds = [c for c in self.known_cmds if c not in base]
        self._known = {c for c in self._known if c not in base}
        self._unforwarded = [c for c in self._unforwarded if c not in base]
        # Dedup moves to the stable base itself.
        self._learned_cmds = {c for c in self._learned_cmds if c not in base}
        for cmd in [c for c in self._unserved if c in base]:
            del self._unserved[cmd]
        for cmd in [c for c in self._acceptor_hint if c in base]:
            del self._acceptor_hint[cmd]

    # -- crash-recovery -------------------------------------------------------------

    def on_crash(self) -> None:
        """Coordinators keep *no* stable state (Section 4.4)."""
        self.crnd = ZERO
        self.cval = None
        self._sent2a = None
        self.known_cmds = []
        self._known = set()
        self._unforwarded = []
        self._p1b = {}
        self._unserved = {}
        self._learned_cmds = set()
        self._fwd_timer = None
        self._stable = _StableState(self.config)

    def on_recover(self) -> None:
        if self._fd is not None:
            self._fd.start()
        if self.config.retransmit is not None:
            self.set_periodic_timer(
                self.config.retransmit.gossip_interval, self._reliability_tick
            )

class GenAcceptor(Process):
    """An acceptor of the generalized algorithm.

    With checkpointing enabled the acceptor journals its vote as a
    *delta log*: each acceptance appends the fresh command group to a
    prefix-keyed journal (one batched disk write per accept, independent
    of history size) instead of rewriting the whole c-struct, and GC
    rewrites the journal to the retained tail above the stable base.
    Recovery replays the journal onto the recorded base.
    """

    # Lost on crash by design: the phase-2a quorum buffers and pending
    # proposals are rebuilt by retransmission, the rest are statistics.
    # Stable state is rnd/vrnd/vval via the delta journal.
    VOLATILE = {
        "_2a_mirror",
        "_collided",
        "_p2a",
        "_p2a_merge",
        "_pending_set",
        "_sent2b",
        "_trail",
        "_vote_digest",
        "collisions_detected",
        "commands_accepted",
        "deltas_sent",
        "fast_accepts",
        "pending",
        "resyncs_requested",
        "stamps_sent",
    }

    def __init__(self, pid: str, sim: Runtime, config: GeneralizedConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.rnd: RoundId = ZERO
        self.vrnd: RoundId = ZERO
        self.vval: CStruct = config.bottom
        self.pending: list[Command] = []
        self._pending_set: set[Command] = set()  # mirror of pending
        self.collisions_detected = 0
        self.fast_accepts = 0
        self.commands_accepted = 0  # distinct commands this acceptor accepted
        # Delta-mode state: per-coordinator mirrors of the 2a streams, a
        # rolling digest + bounded trail of our own vote stream, and the
        # stamp of the last *broadcast* 2b (the next delta's base).
        self._2a_mirror: dict[int, tuple[RoundId, int, int]] = {}
        self._trail = DeltaTrail(config.delta.trail if config.delta else 1)
        self._trail.reset(
            len(config.bottom.command_set()),
            digest_of(config.bottom.command_set()),
        )
        self._vote_digest = self._trail.digest
        self._sent2b: tuple[RoundId, int, int] | None = None
        self.deltas_sent = 0
        self.stamps_sent = 0
        self.resyncs_requested = 0
        self._p2a: dict[RoundId, dict[int, CStruct]] = {}
        # Running lub of every value recorded per round: the collision
        # detector merges each incoming value into it (one lub) instead of
        # re-checking all buffered pairs.
        self._p2a_merge: dict[RoundId, CStruct] = {}
        self._collided: set[RoundId] = set()
        self._stable = _StableState(config)
        self._journal_next = 0  # next index of the "gvote" delta journal
        self._persisted_vrnd: RoundId = ZERO
        # The bound this acceptor has actually truncated to.  Distinct
        # from _stable.bound: fold can advance the collective bound
        # without the base (hence the vote tail) changing, and catch-up
        # answers must only advertise floors that were really applied.
        self.gc_floor = 0
        self.storage.write("mcount", 0)

    # -- phase 1 ---------------------------------------------------------------------

    def on_phase1a(self, msg: Phase1a, src: Hashable) -> None:
        if msg.rnd <= self.rnd:
            if msg.rnd < self.rnd:
                self.send(src, Nack(msg.rnd, self.rnd, self.pid))
            elif self.config.retransmit is not None:
                # Duplicate 1a of the current round: the reliability
                # tick's phase-1 re-drive, healing a lost 1b.  Answering
                # again is idempotent -- the 1b carries the current vote.
                self._send_1b(msg.rnd)
            return
        self._advance_round(msg.rnd)
        self._send_1b(msg.rnd)

    def _send_1b(self, rnd: RoundId) -> None:
        coords = self.config.topology.coordinator_pids(
            self.config.schedule.coordinators_of(rnd)
        )
        self.broadcast(coords, Phase1b(rnd, self.vrnd, self.vval, self.pid))

    def _advance_round(self, rnd: RoundId) -> None:
        previous = self.rnd
        self.rnd = rnd
        if self.config.reduce_disk_writes:
            if rnd.mcount > previous.mcount:
                self.storage.write("mcount", rnd.mcount)
        else:
            self.storage.write("rnd", rnd)

    # -- phase 2b (classic) ------------------------------------------------------------

    def _normalize(self, val: CStruct) -> CStruct:
        """Strip this acceptor's stable base from an incoming c-struct.

        Senders lagging behind in truncation still carry stable-prefix
        commands; receivers fold everything into their own base frame
        before comparing or merging.  Identity when checkpointing is off.
        """
        if self._stable.enabled and self._stable.base:
            return val.without(self._stable.base)
        return val

    def on_phase2a(self, msg: Phase2a, src: Hashable) -> None:
        rnd = msg.rnd
        if rnd < self.rnd:
            self.send(src, Nack(rnd, self.rnd, self.pid))
            return
        if self.config.delta is not None and hasattr(msg.val, "command_set"):
            # A full 2a resets the coordinator's stream mirror: record the
            # stamp in the *sender's* frame (raw, pre-normalization) so it
            # matches the base stamps the coordinator puts on its deltas.
            raw = msg.val.command_set()
            self._2a_mirror[msg.coord] = (rnd, len(raw), digest_of(raw))
        self._ingest_2a(rnd, self._normalize(msg.val), msg.coord)

    def on_phase2adelta(self, msg: Phase2aDelta, src: Hashable) -> None:
        """Extend the coordinator's 2a stream, or request a resync."""
        if self.config.delta is None:
            return
        rnd = msg.rnd
        if rnd < self.rnd:
            self.send(src, Nack(rnd, self.rnd, self.pid))
            return
        mirror = self._2a_mirror.get(msg.coord)
        if mirror is None or mirror[0] != rnd:
            # No stream established for this round yet; a coordinator only
            # sends deltas after a full 2a, so the empty-stream stamp is
            # the bootstrap base (covers e.g. the ZERO-size fresh stream).
            mirror = (rnd, 0, 0)
        if (mirror[1], mirror[2]) != (msg.base_size, msg.base_digest):
            self.resyncs_requested += 1
            self.send(src, ResyncRequest(rnd, mirror[1]))
            return
        if not msg.cmds:
            return  # reliability tick: stream head confirmed, nothing new
        self._2a_mirror[msg.coord] = (
            rnd,
            msg.base_size + len(msg.cmds),
            digest_add(msg.base_digest, msg.cmds),
        )
        prev = self._p2a.get(rnd, {}).get(msg.coord)
        if prev is None:
            prev = self.config.bottom
        if self._stable.enabled and self._stable.base:
            filtered = [c for c in msg.cmds if c not in self._stable.base]
        else:
            filtered = list(msg.cmds)
        appended = [c for c in filtered if not prev.contains(c)]
        self._ingest_2a(rnd, prev.extend(appended), msg.coord)

    def _ingest_2a(self, rnd: RoundId, val: CStruct, coord: int) -> None:
        """Record a coordinator's (reconstructed) 2a value and react."""
        buffer = self._p2a.setdefault(rnd, {})
        # A coordinator's cval grows monotonically within a round, but the
        # network may reorder its "2a" messages; keep the largest seen so a
        # stale message cannot regress the buffer.
        previous = buffer.get(coord)
        changed = True
        if previous is None:
            buffer[coord] = val
        elif len(previous.command_set()) < len(val.command_set()):
            # Strictly more commands: newer on the coordinator's monotone
            # growth path (a reordered older message can only be smaller),
            # or a post-crash fork -- either way the larger value stands
            # and any incompatibility surfaces in the collision check.
            buffer[coord] = val
        elif previous is val or previous == val:
            changed = False  # duplicate delivery
        elif len(previous.command_set()) == len(val.command_set()):
            buffer[coord] = val  # same-size fork: surface the collision
        elif val.leq(previous):
            changed = False  # stale reordered message
        else:
            buffer[coord] = val  # smaller incompatible fork: surface it
        if changed and self._detect_collision(rnd, val):
            # An unchanged buffer cannot newly collide; only re-check after
            # an update.
            return
        if self.config.schedule.is_fast(rnd):
            # Fast rounds: a single coordinator's "2a" suffices (Section 3.3).
            self._accept_classic(rnd, val)
            self._try_fast_append()
            return
        if not changed:
            # Byte-identical buffer (duplicate or stale-reordered message):
            # every quorum glb was already evaluated when the buffer last
            # changed.
            return
        if (
            self.vrnd == rnd
            and len(val.command_set()) <= len(self.vval.command_set())
            and val.leq(self.vval)
        ):
            # Redundant delivery: this coordinator's contribution is below
            # the accepted value, so every quorum glb it participates in is
            # too, and quorums without it saw no new information.  Skip the
            # quorum enumeration entirely (the suffix-diff leq makes this
            # check O(|msg.val|), independent of the accepted history).
            return
        senders = frozenset(buffer)
        for quorum in self.config.schedule.coord_quorums(rnd):
            if coord not in quorum:
                # A quorum glb changes only when a member's buffered value
                # does; quorums without this coordinator were evaluated
                # when their members last reported.
                continue
            if quorum <= senders:
                lower_bound = glb_set([buffer[c] for c in sorted(quorum)])
                self._accept_classic(rnd, lower_bound)

    def _detect_collision(self, rnd: RoundId, new_val: CStruct) -> bool:
        """Multicoordinated collision: incompatible c-structs in one round.

        Folds every recorded value into a per-round running lub; a value
        incompatible with *any* previously recorded one is incompatible
        with their lub and vice versa (CS3: a pairwise-compatible set is
        jointly compatible), so one lub per delivery replaces the O(k²)
        pairwise scan.

        With checkpointing enabled an apparent incompatibility can also be
        transient base skew: the two values were truncated at different
        stable prefixes, so one side is missing ordering constraints the
        other still carries.  Commands known stable *somewhere durable*
        (the advertised-member union) are beyond collision by definition
        -- they are learned -- so the detector retries compatibility with
        them stripped from both sides before declaring a collision.
        """
        if self.config.schedule.is_fast(rnd) or rnd in self._collided:
            return False
        merge = self._p2a_merge.get(rnd)
        if merge is None:
            self._p2a_merge[rnd] = new_val
            return False
        try:
            self._p2a_merge[rnd] = merge.lub(new_val)
            return False
        except IncompatibleError:
            pass
        if self._stable.enabled and self._stable.union:
            reconciled_a = merge.without(self._stable.union)
            reconciled_b = new_val.without(self._stable.union)
            try:
                self._p2a_merge[rnd] = reconciled_a.lub(reconciled_b)
                return False
            except IncompatibleError:
                pass
        if len(self._p2a.get(rnd, ())) < 2:
            # A Section 4.2 collision needs *two* coordinators forwarding
            # incompatible c-structs; a single reporter's values can only
            # disagree through truncation skew (the coordinator GC'd
            # between 2as before our base caught up) or a post-crash
            # fork, where the buffer's keep-the-largest rule already
            # arbitrates.  Reset the detector to the newest value instead
            # of burning a round.
            self._p2a_merge[rnd] = new_val
            return False
        self._collided.add(rnd)
        self.collisions_detected += 1
        next_rnd = self.config.schedule.next_round(rnd)
        if next_rnd > self.rnd:
            self._advance_round(next_rnd)
            self._send_1b(next_rnd)
        return True

    def _accept_classic(self, rnd: RoundId, lower_bound: CStruct) -> None:
        """Phase2bClassic(a, i): accept ``u``, merging via ⊔ within a round."""
        if rnd < self.rnd:
            return
        if self.vrnd == rnd:
            if lower_bound.leq(self.vval):
                return  # nothing new to accept or report
            try:
                new_value = self.vval.lub(lower_bound)
            except IncompatibleError:
                return
            if new_value == self.vval:
                return
        else:
            new_value = lower_bound
        # The delta journal and the delta wire trail both replay "the old
        # vote extended by the fresh suffix", which is faithful only under
        # the append-extension order ``leq`` tests (nothing new ordered
        # before an existing command).  A same-round ⊔ can violate it
        # too -- the merged-in value may constrain a gained command ahead
        # of one we already hold -- so the check cannot be skipped for
        # merges.  Skip it only when neither consumer is on.
        need = self.config.checkpoint is not None or self.config.delta is not None
        extension = not need or self.vval.leq(new_value)
        gained = new_value.command_set() - self.vval.command_set()
        self.commands_accepted += len(gained)
        # Delta hint for learners: the commands this acceptance added, in
        # execution order (advisory; the vote still carries the whole val).
        fresh = tuple(c for c in new_value.linear_extension() if c in gained)
        self._advance_round(rnd)
        self.vrnd = rnd
        self.vval = new_value
        self._persist_vote(fresh, extension)
        self._delta_note_accept(fresh, extension)
        self._broadcast_2b(fresh)

    # -- phase 2b (fast) ---------------------------------------------------------------

    def on_propose(self, msg: Propose, src: Hashable) -> None:
        if msg.acceptor_quorum is not None and self.pid not in msg.acceptor_quorum:
            return
        self._note_pending(msg.cmd)
        self._try_fast_append()

    def on_proposebatch(self, msg: ProposeBatch, src: Hashable) -> None:
        if msg.acceptor_quorum is not None and self.pid not in msg.acceptor_quorum:
            return
        for cmd in msg.cmds:
            self._note_pending(cmd)
        self._try_fast_append()

    def _note_pending(self, cmd: Command) -> None:
        if cmd in self._pending_set or cmd in self._stable.base:
            return
        self._pending_set.add(cmd)
        self.pending.append(cmd)

    def _try_fast_append(self) -> None:
        """Phase2bFast(a): extend vval with proposals in an open fast round."""
        if not self.config.schedule.is_fast(self.rnd) or self.vrnd != self.rnd:
            return
        appended = [cmd for cmd in self.pending if not self.vval.contains(cmd)]
        if not appended:
            return
        grown = self.vval.extend(appended)
        self.fast_accepts += len(appended)
        self.commands_accepted += len(appended)
        self.vval = grown
        self._persist_vote(tuple(appended), True)
        self._delta_note_accept(tuple(appended), True)
        self._broadcast_2b(tuple(appended))

    # -- shared helpers --------------------------------------------------------------

    def _persist_vote(self, fresh: tuple[Command, ...], extension: bool) -> None:
        if self.config.checkpoint is None:
            self.storage.write_many({"vrnd": self.vrnd, "vval": self.vval})
        else:
            # Delta journal: one batched append per accept.  A
            # non-extension accept (a new round's pick replacing dropped
            # commands) invalidates the replay order, so the journal is
            # rewritten to the new tail wholesale -- rare (round changes
            # only), and still one batched write.
            if extension:
                self.storage.append_many("gvote", self._journal_next, fresh)
                self._journal_next += len(fresh)
            else:
                self._rewrite_journal()
            if self.vrnd != self._persisted_vrnd:
                self.storage.write("gvrnd", self.vrnd)
                self._persisted_vrnd = self.vrnd
        self.metrics.custom["acceptor_disk_writes"] += 1

    def _rewrite_journal(self) -> None:
        self.storage.clear("gvote")
        tail = self.vval.linear_extension()
        self.storage.append_many("gvote", self._journal_next, tail)
        self._journal_next += len(tail)

    def _delta_note_accept(
        self, fresh: tuple[Command, ...], extension: bool
    ) -> None:
        """Keep the rolling vote digest and the bounded trail current."""
        if self.config.delta is None:
            return
        if extension:
            self._trail.append(fresh)
        else:
            cmds = self.vval.command_set()
            self._trail.reset(len(cmds), digest_of(cmds))
        self._vote_digest = self._trail.digest

    def _broadcast_2b(self, fresh: tuple[Command, ...] | None = None) -> None:
        size = -1
        suffix = None
        if self.config.delta is not None:
            size = len(self.vval.command_set())
            if (
                fresh is not None
                and self._sent2b is not None
                and self._sent2b[0] == self.vrnd
            ):
                # The delta path is only sound when the vote grew by pure
                # *extension* since the last broadcast stamp: the trail
                # records exactly that history (and was reset by any
                # merge-accept or GC rewrite, making it unanswerable).  A
                # set digest alone cannot tell the two apart -- a merge
                # can keep the command set while reordering constraints,
                # and a receiver extending its mirror by the set diff
                # would silently diverge.  The first 2b of a new round
                # never qualifies (the stamp names the previous round),
                # so a round change always restarts the stream full.
                suffix = self._trail.suffix_from(
                    self._sent2b[1], self._sent2b[2]
                )
        if suffix is not None:
            vote: Phase2b | Phase2bDelta = Phase2bDelta(
                self.vrnd, self._sent2b[1], self._sent2b[2], suffix, self.pid
            )
            self.deltas_sent += 1
        else:
            vote = Phase2b(self.vrnd, self.vval, self.pid, fresh=fresh)
        if self.config.delta is not None:
            self._sent2b = (self.vrnd, size, self._vote_digest)
        self.broadcast(self.config.topology.learners, vote)
        if self.config.send_2b_to_coordinators:
            coords = self.config.topology.coordinator_pids(
                self.config.schedule.coordinators_of(self.vrnd)
            )
            self.broadcast(coords, vote)

    # -- catch-up / checkpointing -----------------------------------------------------

    def on_catchup(self, msg: CatchUp, src: Hashable) -> None:
        """Answer a gap poll: stamp ack, targeted delta, or full vote."""
        if self.config.retransmit is None:
            return
        if self.gc_floor > msg.seen:
            # The poller is below our *applied* truncation floor: our vote
            # tail no longer carries what it is missing -- steer it to
            # install.  (The collective bound alone is not evidence: it
            # can advance without this acceptor having truncated.)
            self.send(src, ITruncated(self.gc_floor))
        if self.vrnd == ZERO:
            return
        if (
            self.config.delta is not None
            and msg.rnd is not None
            and msg.rnd == self.vrnd
        ):
            # Two-phase answer: the poller's mirror stamp decides the size
            # of the reply instead of always re-shipping the whole vote.
            if (msg.size, msg.digest) == (self._trail.size, self._vote_digest):
                self.stamps_sent += 1
                self.send(
                    src, VoteStamp(self.vrnd, msg.size, msg.digest, self.pid)
                )
                return
            suffix = self._trail.suffix_from(msg.size, msg.digest)
            if suffix is not None:
                self.deltas_sent += 1
                self.send(
                    src,
                    Phase2bDelta(
                        self.vrnd, msg.size, msg.digest, suffix, self.pid
                    ),
                )
                return
        self.send(src, Phase2b(self.vrnd, self.vval, self.pid, fresh=None))

    def on_resyncrequest(self, msg: ResyncRequest, src: Hashable) -> None:
        """A learner's 2b mirror diverged: reset it with the full vote."""
        if self.config.delta is None or self.vrnd == ZERO:
            return
        self.send(src, Phase2b(self.vrnd, self.vval, self.pid, fresh=None))

    def on_icheckpoint(self, msg: ICheckpoint, src: Hashable) -> None:
        base = self._stable.fold(src, msg.frontier, msg.members)
        if base is not None:
            self._apply_gc(base)

    def _apply_gc(self, base) -> None:
        """Truncate the vote (and every buffer) below the stable base."""
        self.vval = self.vval.without(base)
        self.pending = [c for c in self.pending if c not in base]
        self._pending_set = {c for c in self._pending_set if c not in base}
        for buffer in self._p2a.values():
            for coord in list(buffer):
                buffer[coord] = buffer[coord].without(base)
        for rnd in list(self._p2a_merge):
            self._p2a_merge[rnd] = self._p2a_merge[rnd].without(base)
        # Journal compaction: rewrite to the retained tail (one batched
        # write) and durably record the base so recovery can tell
        # "truncated because checkpointed" from "never voted".
        self._rewrite_journal()
        self.gc_floor = self._stable.bound
        self.storage.write("gbase", (self.gc_floor, base))
        if self.config.delta is not None:
            # Truncation rewrites the vote in place: every outstanding
            # stream stamp is stale, so restart the 2b stream (next
            # broadcast is full) and forget per-coordinator 2a mirrors
            # (their next delta mismatches and triggers a resync).
            cmds = self.vval.command_set()
            self._trail.reset(len(cmds), digest_of(cmds))
            self._vote_digest = self._trail.digest
            self._sent2b = None
            self._2a_mirror = {}

    # -- crash-recovery -----------------------------------------------------------------

    def on_crash(self) -> None:
        self.rnd = ZERO
        self.vrnd = ZERO
        self.vval = self.config.bottom
        self.pending = []
        self._pending_set = set()
        self._p2a = {}
        self._p2a_merge = {}
        self._collided = set()
        self._stable = _StableState(self.config)
        self._journal_next = 0
        self._persisted_vrnd = ZERO
        self.gc_floor = 0
        self._2a_mirror = {}
        self._sent2b = None
        self._trail.reset(0, 0)
        self._vote_digest = 0

    def on_recover(self) -> None:
        if self.config.checkpoint is None:
            self.vrnd = self.storage.read("vrnd", ZERO)
            self.vval = self.storage.read("vval", self.config.bottom)
        else:
            self.vrnd = self.storage.read("gvrnd", ZERO)
            self._persisted_vrnd = self.vrnd
            bound, base = self.storage.read("gbase", (0, frozenset()))
            self._stable.bound = bound
            self._stable.base = base
            self._stable.union = base
            self.gc_floor = bound
            entries = self.storage.prefix_items("gvote")
            self.vval = self.config.bottom.extend(value for _, value in entries)
            self._journal_next = entries[-1][0] + 1 if entries else 0
        if self.config.reduce_disk_writes:
            mcount = self.storage.read("mcount", 0) + 1
            self.storage.write("mcount", mcount)
            self.rnd = RoundId(mcount=mcount, count=0, coord=-1, rtype=0)
        else:
            self.rnd = self.storage.read("rnd", ZERO)
        if self.config.delta is not None:
            # Streams do not survive a crash: re-seed the trail from the
            # recovered vote so stamped polls answer correctly, and leave
            # every peer to resync off the next full broadcast.
            cmds = self.vval.command_set()
            self._trail.reset(len(cmds), digest_of(cmds))
            self._vote_digest = self._trail.digest

class GenLearner(Process):
    """Learns ever-growing c-structs from quorums of "2b" messages.

    The learner keeps an *executed frontier*: the set of commands already
    contained in ``learned`` (``_seen``).  On top of it, a per-(round,
    acceptor) *unseen set* tracks which commands of the acceptor's latest
    vote are not yet learned; it is maintained from the ``fresh`` delta the
    acceptor piggybacks on its "2b" (O(|delta|) per delivery) and falls
    back to a full O(n) rescan only when a message gap makes the sizes
    disagree.  Every hot-path decision -- can this vote grow the learned
    struct, which glb candidates are worth a lub, which commands are new
    for the callbacks -- is then a membership test against these
    frontiers.  Redundant "2b" deliveries (quorum echoes, duplicates,
    re-sends) short-circuit in O(delta) before any lattice operation runs.

    With checkpointing enabled the learner is the engine's snapshotter:
    every ``interval`` learned commands it captures the attached replica's
    state at the current learned history (a *stable prefix* -- everything
    learned is decided and delivered here), journals the checkpoint under
    one overwritten key, truncates its own learned tail below the
    collective base and advertises the frontier (``ICheckpoint`` with the
    prefix's command set).  A laggard below the cluster's truncation floor
    -- detected by an advertisement whose members it has not learned, or an
    acceptor's ``ITruncated`` -- pulls a peer checkpoint in chunks
    (resumable under loss) and resumes ordinary vote replay above it;
    crash recovery restores the learner's own journalled checkpoint first.
    """

    # Lost on crash by design: peer-frontier advertisements, the
    # snapshot-install scratchpad and the delta-stream mirrors are
    # re-learned from the next gossip/resync round; the rest are
    # statistics.  Stable state is the learner's own checkpoint journal
    # (restored in on_recover).
    VOLATILE = {
        "_acc_current",
        "_idle_polls",
        "_installer",
        "_peer_frontiers",
        "_resync_pending",
        "_unseen_count",
        "_vote_raw",
        "catchup_requests",
        "delta_2b_received",
        "full_2b_received",
        "glb_gate_skips",
        "lub_skips",
        "polls_suppressed",
        "resyncs_sent",
        "snapshot_chunks_sent",
        "snapshot_installs",
        "snapshots_taken",
        "stamps_confirmed",
    }

    def __init__(self, pid: str, sim: Runtime, config: GeneralizedConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.learned: CStruct = config.bottom
        self._latest: dict[RoundId, dict[Hashable, CStruct]] = {}
        self._callbacks: list[Callable[[tuple[Command, ...], CStruct], None]] = []
        self._adopt_callbacks: list[Callable[[int, tuple], None]] = []
        # Executed frontier: every command ever learned (stable base
        # included -- ``learned`` itself only holds the tail above it).
        # With SessionConfig this is a bounded SessionDedup instead of an
        # ever-growing set; both support ``in``/``update``/``len``.
        self._seen = self._fresh_seen()
        # Per-acceptor (for the acceptor's most recent round): commands of
        # the recorded vote not yet learned, plus the vote's round and size
        # (the delta-gap detector).  One entry per acceptor -- bounded
        # state, O(acceptors) pruning per learn event; votes from older
        # rounds fall back to an on-demand scan (:meth:`_unseen_of`).
        self._vote_unseen: dict[Hashable, set[Command]] = {}
        self._vote_rnd: dict[Hashable, RoundId] = {}
        self._vote_size: dict[Hashable, int] = {}
        # Delta-mode state: per-acceptor raw mirrors of the 2b streams
        # (stamped in the *sender's* frame), the acceptors confirmed
        # current (their polls drop to the idle cadence), and the pooled
        # unseen-command counter backing the quorum-feasibility gate.
        self._vote_raw: dict[Hashable, tuple[RoundId, int, int]] = {}
        self._acc_current: set[Hashable] = set()
        self._resync_pending: set[Hashable] = set()
        self._unseen_count: Counter = Counter()
        self._idle_polls = 0
        # Monotone learn count; ``delivered`` itself may be pruned to the
        # session window at snapshot time.
        self.delivered_total = 0
        self.full_2b_received = 0
        self.delta_2b_received = 0
        self.stamps_confirmed = 0
        self.resyncs_sent = 0
        self.polls_suppressed = 0
        self.glb_gate_skips = 0
        # Checkpointing state.
        self._stable = _StableState(config)
        self._replica = None  # set via register_replica (BroadcastReplica)
        self.delivered: list[Command] = []  # full learn-order sequence
        self.snap_frontier = 0
        self.snapshots_taken = 0
        self.snapshot_installs = 0
        self.snapshot_chunks_sent = 0
        self.catchup_requests = 0
        self.lub_skips = 0  # chosen candidates skipped on base skew
        self._snap_members: frozenset = frozenset()
        self._bytes_since_snap = 0
        self._peer_frontiers: dict[Hashable, tuple[int, frozenset]] = {}
        # sticky_source: same-frontier checkpoints of different learners
        # may hold *different* delivered sequences (commuting divergence),
        # so a transfer must never mix chunks from two senders.
        self._installer = SnapshotInstaller(
            self, lambda: len(self._seen), sticky_source=True
        )
        if config.retransmit is not None:
            self.set_periodic_timer(
                config.retransmit.catchup_interval, self._catchup_tick
            )
        if config.checkpoint is not None:
            self.set_periodic_timer(
                config.checkpoint.advertise_interval, self._advertise
            )

    def on_learn(self, callback: Callable[[tuple[Command, ...], CStruct], None]) -> None:
        """Register ``callback(new_commands, learned)`` for learn events."""
        self._callbacks.append(callback)

    def on_adopt(self, callback: Callable[[int, tuple], None]) -> None:
        """Observe checkpoint adoptions: ``callback(frontier, delivered)``.

        Fired whenever the learn-order sequence is replaced wholesale
        (snapshot install or crash-recovery from a journalled
        checkpoint) -- the trace-checker's window into commands that
        never pass through :meth:`on_learn` callbacks.
        """
        self._adopt_callbacks.append(callback)

    def register_replica(self, replica) -> None:
        """Attach the replica whose machine state our checkpoints capture."""
        self._replica = replica

    def has_learned(self, cmd: Command) -> bool:
        """O(1): was *cmd* ever learned here (stable base included)?

        ``learned.contains`` is wrong once checkpointing truncates the
        stable prefix out of ``learned``; this is the engine's durable
        membership test.
        """
        return cmd in self._seen

    def _fresh_seen(self):
        """An empty executed frontier: bounded dedup or plain set."""
        if self.config.sessions is not None:
            seen = SessionDedup(self.config.sessions.window)
            seen.update(self.config.bottom.command_set())
            return seen
        return set(self.config.bottom.command_set())

    def _covers(self, members) -> bool:
        """Does the executed frontier include every member of the claim?"""
        if isinstance(self._seen, SessionDedup):
            return self._seen.covers(members)
        return members <= self._seen

    def _note_vote(
        self, rnd: RoundId, acceptor: Hashable, vote: CStruct, fresh
    ) -> None:
        """Update the unseen frontier for a newly recorded vote.

        When the acceptor's ``fresh`` delta accounts exactly for the size
        difference since the previously recorded vote of the same round,
        the frontier is updated in O(|fresh|); any gap (dropped or
        reordered "2b", or a round change) forces a full rescan of the
        vote's command set.
        """
        unseen = self._vote_unseen.get(acceptor)
        size = len(vote.command_set())
        if (
            unseen is not None
            and fresh is not None
            and self._vote_rnd.get(acceptor) == rnd
            and self._vote_size.get(acceptor, -1) + len(fresh) == size
        ):
            for c in fresh:
                if c not in self._seen and c not in unseen:
                    unseen.add(c)
                    self._unseen_count[c] += 1
        else:
            if unseen:
                for c in unseen:
                    count = self._unseen_count[c] - 1
                    if count > 0:
                        self._unseen_count[c] = count
                    else:
                        del self._unseen_count[c]
            rescanned = {c for c in vote.command_set() if c not in self._seen}
            self._vote_unseen[acceptor] = rescanned
            self._unseen_count.update(rescanned)
        self._vote_rnd[acceptor] = rnd
        self._vote_size[acceptor] = size

    def _unseen_of(self, rnd: RoundId, acceptor: Hashable, vote: CStruct):
        """Unseen commands of *vote*: the frontier, or an on-demand scan.

        The maintained frontier covers the acceptor's most recent round;
        a vote from an older round (rare -- late traffic after a round
        change) is scanned directly, which is the pre-frontier cost.
        """
        if self._vote_rnd.get(acceptor) == rnd:
            return self._vote_unseen[acceptor]
        return {c for c in vote.command_set() if c not in self._seen}

    def on_phase2b(self, msg: Phase2b, src: Hashable) -> None:
        val = msg.val
        if self.config.delta is not None and hasattr(msg.val, "command_set"):
            # A full 2b resets the acceptor's stream mirror (stamped in
            # the sender's frame, pre-normalization).
            raw = msg.val.command_set()
            self._update_mirror(msg.acceptor, msg.rnd, len(raw), digest_of(raw))
            self.full_2b_received += 1
        if self._stable.enabled and self._stable.base:
            # Fold lagging-truncation votes into our base frame.
            val = val.without(self._stable.base)
        votes = self._latest.setdefault(msg.rnd, {})
        # An acceptor's vval grows monotonically within a round (and
        # survives crashes via stable storage), so vote sizes order vote
        # recency: a reordered older "2b" can only be smaller.  The size
        # comparison replaces a per-delivery leq entirely.
        previous = votes.get(msg.acceptor)
        if previous is None or (
            len(previous.command_set()) < len(val.command_set())
        ):
            votes[msg.acceptor] = val
            self._note_vote(msg.rnd, msg.acceptor, val, msg.fresh)
        elif previous != val and not val.leq(previous):
            # Not an older frame of the same growth path (that is the
            # cheap leq case above: a reordered smaller "2b", safely
            # ignored).  The sender's GC can rewrite its frame to a tail
            # *smaller* than our record while a concurrent merge gains
            # commands our record has never seen -- under the size rule
            # those commands would be dropped forever, and with delta
            # streams no later full re-ships them (stamped polls answer
            # VoteStamp and suffixes extend the stale record).  A full is
            # authoritative about *content*, so fold it in: the lub keeps
            # the pre-truncation prefix our record legitimately retains
            # and adopts everything the frame gained, never reordering a
            # common pair.  A genuinely incompatible record (a diverged
            # delta reconstruction) is replaced by the authoritative vote.
            try:
                merged = previous.lub(val)
            except IncompatibleError:
                merged = val
            if merged != previous:
                votes[msg.acceptor] = merged
                self._note_vote(msg.rnd, msg.acceptor, merged, None)
        self._evaluate(msg.rnd)

    def _update_mirror(
        self, acceptor: Hashable, rnd: RoundId, size: int, digest: int
    ) -> None:
        """Reset the raw 2b-stream mirror from a full vote.

        A full ``Phase2b`` is authoritative about the sender's *current*
        frame, which legitimately regresses when the acceptor's GC
        rewrites its vote to the retained tail -- so a same-round smaller
        stamp must still reset the mirror or it wedges ahead forever
        (every later delta would be misread as stale).  A reordered
        *older* full costs at most one extra resync round-trip before the
        stream re-attaches; only an older *round* is ignored.
        """
        mirror = self._vote_raw.get(acceptor)
        if mirror is None or rnd >= mirror[0]:
            self._vote_raw[acceptor] = (rnd, size, digest)
            self._acc_current.add(acceptor)
            self._resync_pending.discard(acceptor)

    def on_phase2bdelta(self, msg: Phase2bDelta, src: Hashable) -> None:
        """Extend an acceptor's recorded vote by the shipped suffix."""
        if self.config.delta is None:
            return
        acc = msg.acceptor
        mirror = self._vote_raw.get(acc)
        if mirror is not None and msg.rnd < mirror[0]:
            return  # older round: the stream moved on
        if mirror is None or mirror != (msg.rnd, msg.base_size, msg.base_digest):
            # The suffix does not attach to what we hold.  A re-delivery
            # of the delta that produced the current mirror is the common
            # duplicate -- verified by digest, not size, because the
            # sender's GC can rewrite its frame to a *smaller* one whose
            # suffixes a size test would misread as stale.  Anything else
            # is a gap or divergence: fetch-on-mismatch, asking once per
            # mirror movement (the full vote resets the stream and clears
            # the pending flag; further unattachable deltas meanwhile are
            # answered by that same full).
            if (
                mirror is not None
                and msg.rnd == mirror[0]
                and msg.base_size + len(msg.fresh) == mirror[1]
                and digest_add(msg.base_digest, msg.fresh) == mirror[2]
            ):
                return  # duplicate of the applied stream head
            if acc not in self._resync_pending:
                self._resync_pending.add(acc)
                self.resyncs_sent += 1
                self._acc_current.discard(acc)
                self.send(src, ResyncRequest(msg.rnd, mirror[1] if mirror else 0))
            return
        self.delta_2b_received += 1
        self._resync_pending.discard(acc)
        self._vote_raw[acc] = (
            msg.rnd,
            msg.base_size + len(msg.fresh),
            digest_add(msg.base_digest, msg.fresh),
        )
        self._acc_current.add(acc)
        votes = self._latest.setdefault(msg.rnd, {})
        prev = votes.get(acc)
        if prev is None:
            prev = self.config.bottom
        if self._stable.enabled and self._stable.base:
            filtered = [c for c in msg.fresh if c not in self._stable.base]
        else:
            filtered = list(msg.fresh)
        appended = tuple(c for c in filtered if not prev.contains(c))
        val = prev.extend(appended)
        votes[acc] = val
        self._note_vote(msg.rnd, acc, val, appended)
        self._evaluate(msg.rnd)

    def on_votestamp(self, msg: VoteStamp, src: Hashable) -> None:
        """An acceptor confirmed our mirror of its vote is current."""
        if self.config.delta is None:
            return
        if self._vote_raw.get(msg.acceptor) == (msg.rnd, msg.size, msg.digest):
            self._acc_current.add(msg.acceptor)
            self.stamps_confirmed += 1

    def _evaluate(self, rnd: RoundId) -> None:
        """Try to grow the learned struct from the recorded votes of *rnd*."""
        votes = self._latest.get(rnd)
        if votes is None:
            return
        needed = self.config.quorums.quorum_size(
            fast=self.config.schedule.is_fast(rnd)
        )
        if len(votes) < needed:
            return
        # Feasibility gate: a command can enter a quorum glb only if it is
        # unseen in *every* member's vote, i.e. counted >= needed times in
        # the pooled unseen counter.  Exact whenever every recorded vote
        # sits on the maintained frontier; then the common "echo of an
        # already-learned suffix" delivery skips the per-vote set walks
        # and the glb enumeration entirely.
        if all(self._vote_rnd.get(acc) == rnd for acc in votes) and not any(
            count >= needed for count in self._unseen_count.values()
        ):
            self.glb_gate_skips += 1
            return
        # A quorum glb is bounded above by each member's vote, so only
        # quorums made entirely of votes with unseen commands can grow the
        # learned struct; with fewer such votes than a quorum, nothing can.
        # Deliberate tradeoff: skipped quorums also skip the is_compatible
        # tripwire below, so an agreement violation confined to
        # already-learned commands would not crash here -- the invariant
        # oracles (repro.core.invariants) remain the authoritative check.
        unseen_by_acc = {
            acc: self._unseen_of(rnd, acc, vote) for acc, vote in votes.items()
        }
        growers = {acc for acc, unseen in unseen_by_acc.items() if unseen}
        if len(growers) < needed:
            return
        # Commands that could possibly be new: the union of the growers'
        # unseen frontiers (a quorum glb is below each member's vote, so it
        # cannot contain unseen commands from anywhere else).
        pool: set[Command] = set()
        for acc in growers:
            pool |= unseen_by_acc[acc]
        new_learned = self.learned
        for chosen in self._chosen_candidates(votes, needed, growers):
            chosen_cmds = chosen.command_set()
            if not any(cmd in chosen_cmds for cmd in pool):
                continue  # the glb dropped every unseen command
            try:
                new_learned = new_learned.lub(chosen)
            except IncompatibleError:
                if self.config.checkpoint is not None:
                    # Transient base skew (the quorum's votes were
                    # truncated at different stable prefixes than ours):
                    # skip this candidate; the retransmission layer
                    # re-delivers once bases converge.  Without
                    # checkpointing an incompatible chosen value is a
                    # protocol-safety violation and must crash.
                    self.lub_skips += 1
                    continue
                raise AssertionError(
                    f"learner {self.pid}: chosen value incompatible with learned "
                    f"({chosen} vs {new_learned})"
                ) from None
        if new_learned is self.learned:
            return
        if (
            len(new_learned.command_set()) == len(self.learned.command_set())
            and new_learned == self.learned
        ):
            return
        fresh = tuple(
            cmd for cmd in new_learned.linear_extension() if cmd not in self._seen
        )
        self.learned = new_learned
        if not fresh:
            return
        self._seen.update(fresh)
        self.delivered.extend(fresh)
        self.delivered_total += len(fresh)
        for unseen in self._vote_unseen.values():
            unseen.difference_update(fresh)
        for cmd in fresh:
            self._unseen_count.pop(cmd, None)
        for cmd in fresh:
            self.metrics.record_learn(cmd, self.pid, self.now)
        if self.config.checkpoint is not None:
            self._bytes_since_snap += sum(len(repr(c)) for c in fresh)
        if (
            self.config.send_2b_to_coordinators
            or self.config.retransmit is not None
        ):
            # Progress report for the Section 4.3 stuck-command detection
            # (and, with retransmission, the proposers' unacked retirement).
            # The reliability layer *depends* on coordinators hearing this
            # -- their 2a re-announce and learned re-acks key off
            # _unserved/_learned_cmds -- so retransmission sends it to
            # them even when the 2b echo is turned off.
            report = Learned(fresh, self.pid)
            self.broadcast(self.config.topology.coordinators, report)
            if self.config.retransmit is not None:
                self.broadcast(self.config.topology.proposers, report)
        for callback in self._callbacks:
            callback(fresh, new_learned)
        self._maybe_snapshot()

    def _chosen_candidates(
        self, votes: dict[Hashable, CStruct], needed: int, growers: set[Hashable]
    ) -> list[CStruct]:
        """Glbs over acceptor quorums among the reporting acceptors.

        Every glb over a full quorum is *chosen* (Definition 3), hence
        learnable.  Only quorums drawn from *growers* (acceptors whose vote
        contains an unseen command) are considered -- any other quorum's glb
        is below an exhausted vote and cannot grow the learned struct.  All
        such quorums are enumerated when cheap; otherwise the quorum of
        acceptors with the largest accepted c-structs is used (sound -- any
        quorum works -- just possibly less eager).
        """
        senders = sorted(growers)
        if comb(len(senders), needed) <= self.config.learner_enumeration_limit:
            groups = combinations(senders, needed)
        else:
            by_size = sorted(
                senders, key=lambda acc: len(votes[acc].command_set()), reverse=True
            )
            groups = [tuple(sorted(by_size[:needed]))]
        return [glb_set([votes[acc] for acc in group]) for group in groups]

    # -- checkpointing ------------------------------------------------------

    def _maybe_snapshot(self) -> None:
        checkpoint = self.config.checkpoint
        if checkpoint is None:
            return
        delta = self.delivered_total - self.snap_frontier
        if delta <= 0:
            return
        due = delta >= checkpoint.interval
        if not due and checkpoint.interval_bytes is not None:
            due = self._bytes_since_snap >= checkpoint.interval_bytes
        if due:
            self._take_snapshot()

    def _take_snapshot(self) -> None:
        """Checkpoint the learned history; advertise; maybe truncate.

        One overwritten storage key -- checkpoints compact state, they
        must not become a second growing log.  The checkpoint carries the
        learn-order command sequence (the replica's executed order plus
        the at-most-once dedup evidence) and the machine state, so an
        installer needs nothing else to resume from the frontier.
        """
        frontier = self.delivered_total
        machine_state = (
            self._replica.snapshot_state() if self._replica is not None else None
        )
        if self.config.sessions is not None:
            # Bounded-memory checkpoint: the dedup evidence rides in its
            # compact session form (packed into the machine field -- the
            # snapshot chunker only carries delivered/machine/frontier),
            # the membership claim is interval runs, and the delivered
            # tail is pruned to the window.  Decisions older than the
            # window live inside the session floors.
            members: object = self._seen.members()
            machine_state = ("sessions1", machine_state, self._seen.state())
            window = self.config.sessions.window
            if len(self.delivered) > window:
                del self.delivered[: len(self.delivered) - window]
        else:
            members = frozenset(self.delivered)
        self.storage.write(
            "snapshot",
            {
                "frontier": frontier,
                "delivered": tuple(self.delivered),
                "machine": machine_state,
                "members": members,
            },
        )
        self.snapshots_taken += 1
        self.snap_frontier = frontier
        self._snap_members = members
        self._bytes_since_snap = 0
        self._advertise()
        # Our own advertisement counts toward the collective bound too.
        base = self._stable.fold(self.pid, frontier, members)
        if base is not None:
            self._apply_gc(base)

    def _advertise(self) -> None:
        if self.config.checkpoint is None or self.snap_frontier <= 0:
            return
        msg = ICheckpoint(self.snap_frontier, members=self._snap_members)
        self.broadcast(self.config.topology.coordinators, msg)
        self.broadcast(self.config.topology.acceptors, msg)
        self.broadcast(self.config.topology.proposers, msg)
        peers = [pid for pid in self.config.topology.learners if pid != self.pid]
        self.broadcast(peers, msg)

    def on_icheckpoint(self, msg: ICheckpoint, src: Hashable) -> None:
        if self.config.checkpoint is None:
            return
        previous = self._peer_frontiers.get(src)
        if previous is None or msg.frontier > previous[0]:
            self._peer_frontiers[src] = (msg.frontier, msg.members or frozenset())
        base = self._stable.fold(src, msg.frontier, msg.members)
        if base is None:
            return
        if self._covers(base):
            self._apply_gc(base)
        else:
            # The *collective* stable base -- what the cluster is entitled
            # to truncate out of the vote tails -- contains commands we
            # never learned, so ordinary replay cannot be relied on:
            # install a checkpoint (tier two of catch-up).  A peer merely
            # being ahead of us does not trigger this (under the min
            # policy the bound cannot pass the slowest learner at all);
            # routine lag heals through the cumulative vote stream.
            self._request_install()

    def _apply_gc(self, base) -> None:
        """Truncate the learned tail (and vote buffers) below the base."""
        self.learned = self.learned.without(base)
        for votes in self._latest.values():
            for acc in list(votes):
                votes[acc] = votes[acc].without(base)
        # Vote-size bookkeeping refers to pre-truncation sizes; reset so
        # the next delivery per acceptor does one full rescan.  The raw
        # stream mirrors survive: they stamp the *senders'* frames, which
        # truncation here does not move.
        self._vote_unseen = {}
        self._vote_rnd = {}
        self._vote_size = {}
        self._unseen_count = Counter()
        # A base advance is exactly when a lub skipped for base skew
        # becomes retryable -- and with delta streams, stamped polls
        # confirm currency without re-delivering the votes, so no later
        # message is guaranteed to trigger the retry.  Re-evaluate here.
        for rnd in list(self._latest):
            self._evaluate(rnd)

    # -- catch-up / snapshot install ----------------------------------------

    def _catchup_tick(self) -> None:
        retransmit = self.config.retransmit
        if retransmit is None:
            return
        # The shared installer re-requests missing chunks, abandons
        # stalled transfers (re-sourcing via _request_install) and drops
        # transfers the cumulative vote stream already overtook.
        self._installer.tick(self._request_install)
        # Stranded below the collective base (fold reported it once, but
        # no install source was known yet, or the transfer was lost):
        # keep retrying until a checkpoint covers us.
        if (
            self._installer.pending is None
            and self._stable.enabled
            and not self._covers(self._stable.base)
        ):
            self._request_install()
        if self.config.delta is None:
            # Vote poll: cumulative votes re-deliver anything a lost "2b"
            # carried, so one poll heals arbitrarily many losses.
            self.catchup_requests += 1
            self.broadcast(
                self.config.topology.acceptors, CatchUp(seen=len(self._seen))
            )
            return
        # Stamped polls: acceptors confirmed current are re-polled only on
        # the slow idle cadence; the rest get a poll carrying our mirror
        # stamp, answered with an O(1) ack, a targeted suffix, or (after
        # divergence) the full vote.  Idle-cluster chatter is O(1) bytes
        # per slow tick instead of O(history) per tick.
        self._idle_polls += 1
        due_all = self._idle_polls % self.config.delta.idle_poll_every == 0
        seen = len(self._seen)
        for acc in self.config.topology.acceptors:
            if acc in self._acc_current and not due_all:
                self.polls_suppressed += 1
                continue
            self.catchup_requests += 1
            mirror = self._vote_raw.get(acc)
            if mirror is None:
                self.send(acc, CatchUp(seen=seen))
            else:
                self.send(
                    acc,
                    CatchUp(
                        seen=seen, rnd=mirror[0], size=mirror[1], digest=mirror[2]
                    ),
                )

    def on_itruncated(self, msg: ITruncated, src: Hashable) -> None:
        """An acceptor's vote tail starts above our knowledge: install."""
        if msg.floor <= len(self._seen):
            return
        self._request_install()

    def _request_install(self) -> None:
        """Ask the most advanced known peer for its checkpoint."""
        self._installer.request_from_best(
            {pid: frontier for pid, (frontier, _m) in self._peer_frontiers.items()}
        )

    def on_isnapshotrequest(self, msg: ISnapshotRequest, src: Hashable) -> None:
        snapshot = self.storage.read("snapshot")
        if snapshot is None:
            return
        self.snapshot_chunks_sent += serve_snapshot(
            self, msg, src, snapshot, self.config.checkpoint.chunk_size
        )

    def on_isnapshotchunk(self, msg: ISnapshotChunk, src: Hashable) -> None:
        assembled = self._installer.fold_chunk(msg, src)
        if assembled is not None:
            self._install_snapshot(*assembled)

    def _install_snapshot(
        self, frontier: int, delivered: tuple, machine_state: Hashable | None
    ) -> None:
        """Adopt a fully assembled peer checkpoint (state transfer).

        The checkpoint's sequence extends everything we delivered (the
        sender learned a superset of our stable knowledge), so adoption is
        a fast-forward: machine state, executed order and dedup evidence
        come from the checkpoint; commands we learned that the checkpoint
        lacks (commuting divergence at the boundary) are re-learned on top
        of it.  The installed checkpoint immediately becomes our own
        journalled one -- a crash right after the install must not send us
        below the cluster's truncation floor again.
        """
        if self.config.sessions is not None:
            if frontier <= self.delivered_total:
                return
            # The dedup evidence travels packed in the machine field (the
            # delivered tail is pruned to the window); the restored
            # sessions -- not the tail -- are the membership authority.
            restored = SessionDedup.restore(
                machine_state[2], self.config.sessions.window
            )
            members: object = restored.members()
            extras = tuple(
                c for c in self.learned.linear_extension() if c not in restored
            )
        else:
            if len(delivered) <= len(self._seen):
                return
            members = frozenset(delivered)
            extras = tuple(
                c for c in self.learned.linear_extension() if c not in members
            )
        self.snapshot_installs += 1
        self.storage.write(
            "snapshot",
            {
                "frontier": frontier,
                "delivered": delivered,
                "machine": machine_state,
                "members": members,
            },
        )
        self._adopt_checkpoint(frontier, delivered, machine_state, members)
        if extras:
            # Re-learn our divergent tail on top of the installed base:
            # the replica was reset to the checkpoint, so these commands
            # must execute (again) and re-enter the learn order.
            self.learned = self.config.bottom.extend(extras)
            self._seen.update(extras)
            self.delivered.extend(extras)
            self.delivered_total += len(extras)
            for callback in self._callbacks:
                callback(extras, self.learned)

    def _adopt_checkpoint(
        self, frontier: int, delivered: tuple, machine_state, members
    ) -> None:
        """Fast-forward the learn state to a checkpoint.

        Shared by snapshot install (state transfer) and crash-recovery
        (restoring the learner's own journalled checkpoint).
        """
        self.delivered = list(delivered)
        self.delivered_total = frontier
        if (
            self.config.sessions is not None
            and isinstance(machine_state, tuple)
            and machine_state
            and machine_state[0] == "sessions1"
        ):
            _tag, machine_state, sess_state = machine_state
            self._seen = SessionDedup.restore(
                sess_state, self.config.sessions.window
            )
            self._seen.update(self.config.bottom.command_set())
        else:
            self._seen = set(delivered) | set(self.config.bottom.command_set())
        self.learned = self.config.bottom
        self._latest = {}
        self._vote_unseen = {}
        self._vote_rnd = {}
        self._vote_size = {}
        self._unseen_count = Counter()
        self._vote_raw = {}
        self._acc_current = set()
        self._resync_pending = set()
        self._stable.base = members
        self._stable.bound = max(self._stable.bound, frontier)
        self._stable.union = self._stable.union | members
        self.snap_frontier = frontier
        self._snap_members = members
        self._bytes_since_snap = 0
        if self._replica is not None:
            self._replica.install_snapshot(machine_state, delivered)
        for callback in self._adopt_callbacks:
            callback(frontier, tuple(delivered))
        self._advertise()

    # -- crash-recovery -----------------------------------------------------

    def on_crash(self) -> None:
        if self.config.checkpoint is None:
            # Legacy behaviour (kept for the pre-checkpoint tests): the
            # learner's learn state survives the crash object-wise and
            # recovery relies on the cumulative vote stream only.
            return
        self.learned = self.config.bottom
        self._latest = {}
        self._seen = self._fresh_seen()
        self._vote_unseen = {}
        self._vote_rnd = {}
        self._vote_size = {}
        self._unseen_count = Counter()
        self._vote_raw = {}
        self._acc_current = set()
        self._resync_pending = set()
        self._idle_polls = 0
        self.delivered = []
        self.delivered_total = 0
        self.snap_frontier = 0
        self._snap_members = frozenset()
        self._bytes_since_snap = 0
        self._stable = _StableState(self.config)
        self._peer_frontiers = {}
        self._installer.reset()
        if self._replica is not None:
            self._replica.install_snapshot(None, ())

    def on_recover(self) -> None:
        # Timers died with the crash; re-arm the vote poll and the
        # frontier re-announce.
        if self.config.retransmit is not None:
            self.set_periodic_timer(
                self.config.retransmit.catchup_interval, self._catchup_tick
            )
        if self.config.checkpoint is None:
            return
        self.set_periodic_timer(
            self.config.checkpoint.advertise_interval, self._advertise
        )
        # Snapshot-restore + suffix replay: our own journalled checkpoint
        # fast-forwards the learn frontier; everything above it arrives
        # through the vote poll (or snapshot install, if the cluster
        # truncated past us during the outage).
        snapshot = self.storage.read("snapshot")
        if snapshot is None:
            return
        self._adopt_checkpoint(
            snapshot["frontier"],
            snapshot["delivered"],
            snapshot["machine"],
            snapshot["members"],
        )


@dataclass
class GeneralizedCluster:
    """A deployed generalized instance plus driving helpers."""

    sim: Runtime
    config: GeneralizedConfig
    proposers: list[GenProposer]
    coordinators: list[GenCoordinator]
    acceptors: list[GenAcceptor]
    learners: list[GenLearner]
    _proposal_index: int = field(default=0)

    def propose(self, cmd: Command, delay: float = 0.0, proposer: int | None = None) -> None:
        if proposer is None:
            proposer = self._proposal_index % len(self.proposers)
            self._proposal_index += 1
        agent = self.proposers[proposer]
        self.sim.schedule(delay, lambda: agent.propose(cmd))

    def start_round(self, rnd: RoundId, coordinator: int | None = None, delay: float = 0.0) -> None:
        index = rnd.coord if coordinator is None else coordinator
        agent = self.coordinators[index]
        self.sim.schedule(delay, lambda: agent.start_round(rnd))

    def set_load_balancing(self, enabled: bool) -> None:
        for proposer in self.proposers:
            proposer.balance_load = enabled

    def flush(self) -> None:
        """Ship every proposer's partial batch and coalesced group now."""
        for proposer in self.proposers:
            proposer.flush()
        for coordinator in self.coordinators:
            coordinator._flush_forward()

    def learned_structs(self) -> list[CStruct]:
        return [l.learned for l in self.learners]

    def everyone_learned(self, cmds) -> bool:
        return all(
            all(l.has_learned(cmd) for cmd in cmds) for l in self.learners
        )

    def run_until_learned(self, cmds, timeout: float = 2_000.0) -> bool:
        cmds = list(cmds)
        return self.sim.run_until(lambda: self.everyone_learned(cmds), timeout=timeout)

    def total_acceptor_disk_writes(self) -> int:
        return sum(a.storage.write_count for a in self.acceptors)

    def retransmission_stats(self) -> dict[str, int]:
        """Aggregate reliability-layer counters across the cluster."""
        return {
            "retransmissions": sum(p.retransmissions for p in self.proposers),
            "reannounced_2a": sum(c.reannounced_2a for c in self.coordinators),
            "catchup_requests": sum(l.catchup_requests for l in self.learners),
        }

    def delta_stats(self) -> dict[str, int]:
        """Aggregate delta-wire-protocol counters across the cluster."""
        return {
            "full_2b": sum(l.full_2b_received for l in self.learners),
            "delta_2b": sum(l.delta_2b_received for l in self.learners),
            "stamps_confirmed": sum(l.stamps_confirmed for l in self.learners),
            "resyncs_sent": sum(l.resyncs_sent for l in self.learners),
            "polls_suppressed": sum(l.polls_suppressed for l in self.learners),
            "glb_gate_skips": sum(l.glb_gate_skips for l in self.learners),
            "acceptor_deltas_sent": sum(a.deltas_sent for a in self.acceptors),
            "acceptor_stamps_sent": sum(a.stamps_sent for a in self.acceptors),
            "acceptor_resyncs": sum(a.resyncs_requested for a in self.acceptors),
            "coordinator_resyncs_answered": sum(
                c.resyncs_answered for c in self.coordinators
            ),
        }

    def retained_dedup(self) -> int:
        """Worst-case learner dedup cells retained (the E15 bound metric)."""
        return max(
            (
                l._seen.retained()
                if isinstance(l._seen, SessionDedup)
                else len(l._seen)
            )
            for l in self.learners
        )

    def checkpoint_stats(self) -> dict[str, int]:
        """Aggregate checkpoint/GC counters across the cluster."""
        return {
            "snapshots": sum(l.snapshots_taken for l in self.learners),
            "installs": sum(l.snapshot_installs for l in self.learners),
            "chunks_sent": sum(l.snapshot_chunks_sent for l in self.learners),
            "min_snap_frontier": min(l.snap_frontier for l in self.learners),
            "acceptor_floor": min(a.gc_floor for a in self.acceptors),
            "coordinator_floor": min(c._stable.bound for c in self.coordinators),
        }

    def retained_history(self) -> dict[str, int]:
        """Worst-case per-process retained history-lattice state, by kind.

        The bounded-memory claim of the stable-prefix checkpointing layer
        (benchmark E13) is about exactly these numbers: with a
        ``CheckpointConfig`` they must track the checkpoint *window*, not
        the total history.
        """
        return {
            "acceptor vval": max(len(a.vval.command_set()) for a in self.acceptors),
            "acceptor journal": max(
                a.storage.prefix_count("gvote") for a in self.acceptors
            ),
            "coordinator cval": max(
                (len(c.cval.command_set()) if c.cval is not None else 0)
                for c in self.coordinators
            ),
            "learner learned": max(
                len(l.learned.command_set()) for l in self.learners
            ),
            "learner votes": max(
                (
                    max(
                        (len(v.command_set()) for votes in l._latest.values()
                         for v in votes.values()),
                        default=0,
                    )
                )
                for l in self.learners
            ),
        }


def build_generalized(
    sim: Runtime,
    bottom: CStruct,
    n_proposers: int = 2,
    n_coordinators: int = 3,
    n_acceptors: int = 3,
    n_learners: int = 2,
    schedule: RoundSchedule | None = None,
    f: int | None = None,
    e: int | None = None,
    liveness: LivenessConfig | None = None,
    reduce_disk_writes: bool = True,
    batching: GenBatchingConfig | None = None,
    retransmit: RetransmitConfig | None = None,
    checkpoint: CheckpointConfig | None = None,
    delta: DeltaConfig | None = None,
    sessions: SessionConfig | None = None,
) -> GeneralizedCluster:
    """Deploy a Multicoordinated Generalized Paxos instance on *sim*."""
    topology = Topology.build(n_proposers, n_coordinators, n_acceptors, n_learners)
    quorums = QuorumSystem(topology.acceptors, f=f, e=e)
    if schedule is None:
        schedule = RoundSchedule(range(n_coordinators), recovery_rtype=1)
    config = GeneralizedConfig(
        topology=topology,
        quorums=quorums,
        schedule=schedule,
        bottom=bottom,
        liveness=liveness,
        reduce_disk_writes=reduce_disk_writes,
        batching=batching,
        retransmit=retransmit,
        checkpoint=checkpoint,
        delta=delta,
        sessions=sessions,
    )
    return GeneralizedCluster(
        sim=sim,
        config=config,
        proposers=[GenProposer(pid, sim, config) for pid in topology.proposers],
        coordinators=[
            GenCoordinator(pid, sim, config, index)
            for index, pid in enumerate(topology.coordinators)
        ],
        acceptors=[GenAcceptor(pid, sim, config) for pid in topology.acceptors],
        learners=[GenLearner(pid, sim, config) for pid in topology.learners],
    )
