"""Multicoordinated Paxos for consensus (Section 3.1).

The algorithm extends Fast Paxos with *multicoordinated* classic rounds:
any coordinator of round *i* may execute phases 1a and 2a, but an acceptor
accepts a value only when it received phase "2a" messages carrying the
*same* value from every coordinator in some i-coordquorum (Assumption 3:
any two coordinator quorums of a classic round intersect).  Fast rounds
behave as in Fast Paxos: the coordinator sends the special ``Any`` value
and acceptors accept proposals directly from proposers.

Classic Paxos is the special case where every round is classic with a
single one-element coordinator quorum; Fast Paxos is the special case with
single-coordinated classic rounds plus fast rounds.  Both are reachable via
the :class:`repro.core.rounds.RoundSchedule` configuration, and independent
baseline implementations live in :mod:`repro.protocols`.

Collision handling (Section 4.2):

* multicoordinated rounds -- acceptors detect coordinators of one round
  forwarding different values and react as if a phase "1a" message for the
  next round had been received (no disk write is wasted: the conflicting
  values are never accepted);
* fast rounds -- coordinators monitor phase "2b" messages; when no value
  can reach a quorum the round coordinator performs *coordinated recovery*,
  reinterpreting the "2b" messages of round i as "1b" messages of round
  i+1 and jumping straight to phase 2a (two communication steps).

Liveness (Section 4.3): acceptors answer stale rounds with ``Nack``
messages so a coordinator that believes itself leader can start a
higher-numbered round.

Scope note (engine parity): this module is the *single-value consensus*
form of the paper's algorithm -- one decision, then done -- so the
production layers make no sense here and live elsewhere: batching,
retransmission and checkpointing for command *streams* are provided by
the generalized engine (:mod:`repro.core.generalized`, one growing
c-struct) and the multi-instance engine (:mod:`repro.smr.instances`, one
consensus instance per command/batch), both of which reuse this module's
round taxonomy.  The delta wire protocol (``DeltaConfig``: suffix-only
2a/2b streams, stamped catch-up, ``docs/messages.md``) is likewise a
stream optimisation and exists only in the generalized engine -- a
single-value round has no history to ship a delta of.  A driver that
needs a reliable single decision retries ``propose``/``start_round`` on
the ``Nack``/timeout signals above.  See
the root ``README.md`` for the engine feature-parity matrix and
``docs/messages.md`` for the full message taxonomy.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.core.messages import ANY, Nack, Phase1a, Phase1b, Phase2a, Phase2b, Propose
from repro.core.provedsafe import pick_value
from repro.core.quorums import QuorumSystem
from repro.core.rounds import ZERO, RoundId, RoundSchedule
from repro.core.topology import Topology
from repro.core.runtime import Process, Runtime


@dataclass
class ConsensusConfig:
    """Static configuration shared by all agents of one deployment."""

    topology: Topology
    quorums: QuorumSystem
    schedule: RoundSchedule
    send_2b_to_coordinators: bool = True
    reduce_disk_writes: bool = True

    def __post_init__(self) -> None:
        if tuple(sorted(self.quorums.acceptors)) != tuple(sorted(self.topology.acceptors)):
            raise ValueError("quorum system must be defined over the topology's acceptors")


class Proposer(Process):
    """Sends ⟨propose, v⟩ to coordinators and acceptors (Fast Paxos rule)."""

    def __init__(self, pid: str, sim: Runtime, config: ConsensusConfig) -> None:
        super().__init__(pid, sim)
        self.config = config

    def propose(self, cmd: Hashable) -> None:
        """Propose *cmd*; records the propose instant for latency metrics."""
        self.metrics.record_propose(cmd, self.now)
        msg = Propose(cmd)
        self.broadcast(self.config.topology.coordinators, msg)
        self.broadcast(self.config.topology.acceptors, msg)


class _CoordPhase(enum.Enum):
    IDLE = "idle"
    PHASE1 = "phase1"
    READY = "ready"  # phase 1 done, free to pick, waiting for a proposal
    SENT = "sent"  # value (or Any) sent in a phase "2a" message


class Coordinator(Process):
    """A round coordinator (one of possibly many per round)."""

    def __init__(self, pid: str, sim: Runtime, config: ConsensusConfig, index: int) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.index = index
        self.crnd: RoundId = ZERO
        self.cval: Hashable | None = None
        self.phase = _CoordPhase.IDLE
        self.pending: list[Hashable] = []
        self._pending_set: set[Hashable] = set()  # mirror of pending
        self.highest_seen: RoundId = ZERO
        self.collisions_recovered = 0
        self._p1b: dict[RoundId, dict[Hashable, Phase1b]] = {}
        self._p2b: dict[RoundId, dict[Hashable, Phase2b]] = {}

    # -- round management ---------------------------------------------------

    def start_round(self, rnd: RoundId) -> None:
        """Phase1a(c, i): begin round *rnd* (must be one of its coordinators)."""
        if not self.config.schedule.is_coordinator_of(self.index, rnd):
            raise ValueError(f"coordinator {self.index} does not coordinate {rnd}")
        if rnd <= self.crnd:
            raise ValueError(f"round {rnd} is not above current round {self.crnd}")
        self._adopt(rnd)
        self.broadcast(self.config.topology.acceptors, Phase1a(rnd))

    def _adopt(self, rnd: RoundId) -> None:
        self.crnd = rnd
        self.cval = None
        self.phase = _CoordPhase.PHASE1
        self.highest_seen = max(self.highest_seen, rnd)

    # -- message handlers ------------------------------------------------------

    def on_propose(self, msg: Propose, src: Hashable) -> None:
        if msg.cmd not in self._pending_set:
            self._pending_set.add(msg.cmd)
            self.pending.append(msg.cmd)
        self._try_send_value()

    def on_phase1b(self, msg: Phase1b, src: Hashable) -> None:
        rnd = msg.rnd
        self.highest_seen = max(self.highest_seen, rnd)
        if not self.config.schedule.is_coordinator_of(self.index, rnd):
            return
        if rnd > self.crnd:
            # Another coordinator (or collision detection at an acceptor)
            # started this round; participate in it.
            self._adopt(rnd)
        if rnd != self.crnd or self.phase is not _CoordPhase.PHASE1:
            return
        self._p1b.setdefault(rnd, {})[msg.acceptor] = msg
        msgs = self._p1b[rnd]
        if len(msgs) < self.config.quorums.classic_quorum_size:
            return
        self._phase2(msgs)

    def _phase2(self, msgs: dict[Hashable, Phase1b]) -> None:
        """Phase2a(c, i): pick a value and send it (or Any) to the acceptors."""
        pick = pick_value(self.config.quorums, msgs, self.config.schedule.is_fast)
        if not pick.free:
            self._send_value(pick.value)
            return
        if self.config.schedule.is_fast(self.crnd):
            self._send_value(ANY)
            return
        self.phase = _CoordPhase.READY
        self._try_send_value()

    def _try_send_value(self) -> None:
        if self.phase is _CoordPhase.READY and self.pending:
            self._send_value(self.pending[0])

    def _send_value(self, value: Hashable) -> None:
        self.cval = value
        self.phase = _CoordPhase.SENT
        self.broadcast(
            self.config.topology.acceptors,
            Phase2a(self.crnd, value, self.index),
        )

    # -- fast-round collision monitoring & coordinated recovery (§4.2) --------

    def on_phase2b(self, msg: Phase2b, src: Hashable) -> None:
        rnd = msg.rnd
        self.highest_seen = max(self.highest_seen, rnd)
        self._p2b.setdefault(rnd, {})[msg.acceptor] = msg
        if rnd != self.crnd or self.phase is not _CoordPhase.SENT:
            return
        votes = self._p2b[rnd]
        if not self._is_collided(votes):
            return
        next_rnd = self.config.schedule.next_round(self.crnd)
        if not self.config.schedule.is_coordinator_of(self.index, next_rnd):
            return
        # Coordinated recovery: reinterpret round-i "2b" messages as
        # round-(i+1) "1b" messages and go straight to phase 2a.
        as_1b = {
            acc: Phase1b(next_rnd, vrnd=rnd, vval=vote.val, acceptor=acc)
            for acc, vote in votes.items()
        }
        self.collisions_recovered += 1
        self._adopt(next_rnd)
        self._phase2(as_1b)

    def _is_collided(self, votes: dict[Hashable, Phase2b]) -> bool:
        """No value can reach an acceptor quorum anymore in this round."""
        if len(votes) < self.config.quorums.classic_quorum_size:
            return False
        needed = self.config.quorums.quorum_size(
            fast=self.config.schedule.is_fast(self.crnd)
        )
        counts: dict[Hashable, int] = {}
        for vote in votes.values():
            counts[vote.val] = counts.get(vote.val, 0) + 1
        missing = self.config.quorums.n - len(votes)
        best = max(counts.values(), default=0)
        return best + missing < needed

    def on_nack(self, msg: Nack, src: Hashable) -> None:
        """Stale-round notification (Section 4.3); drivers may react."""
        self.highest_seen = max(self.highest_seen, msg.higher)


class Acceptor(Process):
    """A Multicoordinated Paxos acceptor (consensus variant).

    Volatile state: ``rnd`` (highest round heard of, kept in memory per the
    Section 4.4 optimization), the phase "2a" buffer and pending proposals.
    Stable state: ``vrnd``/``vval`` (one disk write per acceptance) and the
    MCount watermark.
    """

    # The crash-recovery contract from the docstring, machine-checkable:
    # quorum buffers and pending proposals are rebuilt by retransmission,
    # accept_log mirrors the journal it was appended from, the rest are
    # statistics.
    VOLATILE = {
        "_any_open",
        "_collided",
        "_p2a",
        "_pending_set",
        "accept_log",
        "collisions_detected",
        "pending",
    }

    def __init__(self, pid: str, sim: Runtime, config: ConsensusConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.rnd: RoundId = ZERO
        self.vrnd: RoundId = ZERO
        self.vval: Hashable | None = None
        self.pending: list[Hashable] = []
        self._pending_set: set[Hashable] = set()  # mirror of pending
        self.collisions_detected = 0
        self.accept_log: list[tuple[RoundId, Hashable]] = []  # one disk write each
        self._p2a: dict[RoundId, dict[int, Hashable]] = {}
        self._any_open: set[RoundId] = set()
        self._collided: set[RoundId] = set()
        self.storage.write("mcount", 0)  # the one startup write of §4.4

    # -- phase 1 -------------------------------------------------------------

    def on_phase1a(self, msg: Phase1a, src: Hashable) -> None:
        if msg.rnd <= self.rnd:
            if msg.rnd < self.rnd:
                self.send(src, Nack(msg.rnd, self.rnd, self.pid))
            return
        self._advance_round(msg.rnd)
        self._send_1b(msg.rnd)

    def _send_1b(self, rnd: RoundId) -> None:
        coords = self.config.topology.coordinator_pids(
            self.config.schedule.coordinators_of(rnd)
        )
        self.broadcast(coords, Phase1b(rnd, self.vrnd, self.vval, self.pid))

    def _advance_round(self, rnd: RoundId) -> None:
        """Update ``rnd``, writing to disk only per the §4.4 policy."""
        previous = self.rnd
        self.rnd = rnd
        if self.config.reduce_disk_writes:
            if rnd.mcount > previous.mcount:
                self.storage.write("mcount", rnd.mcount)
        else:
            self.storage.write("rnd", rnd)

    # -- phase 2 -------------------------------------------------------------

    def on_phase2a(self, msg: Phase2a, src: Hashable) -> None:
        rnd = msg.rnd
        if rnd < self.rnd:
            self.send(src, Nack(rnd, self.rnd, self.pid))
            return
        buffer = self._p2a.setdefault(rnd, {})
        buffer[msg.coord] = msg.val
        if self._detect_collision(rnd, buffer):
            return
        senders = frozenset(buffer)
        for quorum in self.config.schedule.coord_quorums(rnd):
            if not quorum <= senders:
                continue
            values = {buffer[c] for c in quorum}
            if len(values) != 1:
                continue
            # Singleton by the guard above -- extraction order-independent.
            # protolint: ignore[determinism]
            value = next(iter(values))
            if value is ANY:
                self._any_open.add(rnd)
                self._try_fast_accept()
            else:
                self._accept(rnd, value)
            return

    def _detect_collision(self, rnd: RoundId, buffer: dict[int, Hashable]) -> bool:
        """Multicoordinated collision: one round, different forwarded values.

        Reacts as if a phase "1a" message for the next round had been
        received (Section 4.2), *before* accepting anything -- no disk
        write is wasted, unlike fast-round collisions.
        """
        values = {v for v in buffer.values() if v is not ANY}
        if len(values) <= 1 or rnd in self._collided:
            return False
        self._collided.add(rnd)
        self.collisions_detected += 1
        next_rnd = self.config.schedule.next_round(rnd)
        if next_rnd > self.rnd:
            self._advance_round(next_rnd)
            self._send_1b(next_rnd)
        return True

    def _accept(self, rnd: RoundId, value: Hashable) -> None:
        """Phase2b(a, i): accept *value* (at most one value per round)."""
        if rnd < self.rnd or self.vrnd >= rnd:
            return
        if rnd > self.rnd:
            self._advance_round(rnd)
        self.vrnd = rnd
        self.vval = value
        self.accept_log.append((rnd, value))
        self.storage.write_many({"vrnd": rnd, "vval": value})
        vote = Phase2b(rnd, value, self.pid)
        self.broadcast(self.config.topology.learners, vote)
        if self.config.send_2b_to_coordinators:
            coords = self.config.topology.coordinator_pids(
                self.config.schedule.coordinators_of(rnd)
            )
            self.broadcast(coords, vote)

    def on_propose(self, msg: Propose, src: Hashable) -> None:
        if msg.cmd not in self._pending_set:
            self._pending_set.add(msg.cmd)
            self.pending.append(msg.cmd)
        self._try_fast_accept()

    def _try_fast_accept(self) -> None:
        if self.rnd in self._any_open and self.vrnd < self.rnd and self.pending:
            self._accept(self.rnd, self.pending[0])

    # -- crash-recovery ----------------------------------------------------------

    def on_crash(self) -> None:
        self.rnd = ZERO
        self.vrnd = ZERO
        self.vval = None
        self.pending = []
        self._pending_set = set()
        self._p2a = {}
        self._any_open = set()
        self._collided = set()

    def on_recover(self) -> None:
        """Reload stable state; §4.4: bump MCount instead of reading rnd."""
        self.vrnd = self.storage.read("vrnd", ZERO)
        self.vval = self.storage.read("vval", None)
        if self.config.reduce_disk_writes:
            mcount = self.storage.read("mcount", 0) + 1
            self.storage.write("mcount", mcount)
            self.rnd = RoundId(mcount=mcount, count=0, coord=-1, rtype=0)
        else:
            self.rnd = self.storage.read("rnd", ZERO)


class Learner(Process):
    """Learns a value once an acceptor quorum accepted it in one round."""

    def __init__(self, pid: str, sim: Runtime, config: ConsensusConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.learned: Hashable | None = None
        self.learned_at: float | None = None
        self._votes: dict[RoundId, dict[Hashable, Hashable]] = {}
        self._callbacks: list[Callable[[Hashable], None]] = []

    def on_learn(self, callback: Callable[[Hashable], None]) -> None:
        self._callbacks.append(callback)

    def on_phase2b(self, msg: Phase2b, src: Hashable) -> None:
        votes = self._votes.setdefault(msg.rnd, {})
        votes[msg.acceptor] = msg.val
        needed = self.config.quorums.quorum_size(
            fast=self.config.schedule.is_fast(msg.rnd)
        )
        count = sum(1 for v in votes.values() if v == msg.val)
        if count < needed:
            return
        if self.learned is not None:
            if self.learned != msg.val:
                raise AssertionError(
                    f"consistency violation at {self.pid}: "
                    f"{self.learned!r} vs {msg.val!r}"
                )
            return
        self.learned = msg.val
        self.learned_at = self.now
        self.metrics.record_learn(msg.val, self.pid, self.now)
        for callback in self._callbacks:
            callback(msg.val)


@dataclass
class ConsensusCluster:
    """A deployed consensus instance: all agents plus driving helpers."""

    sim: Runtime
    config: ConsensusConfig
    proposers: list[Proposer]
    coordinators: list[Coordinator]
    acceptors: list[Acceptor]
    learners: list[Learner]
    _proposal_index: int = field(default=0)

    def propose(self, cmd: Hashable, delay: float = 0.0, proposer: int | None = None) -> None:
        """Schedule a proposal (round-robin across proposers by default)."""
        if proposer is None:
            proposer = self._proposal_index % len(self.proposers)
            self._proposal_index += 1
        agent = self.proposers[proposer]
        self.sim.schedule(delay, lambda: agent.propose(cmd))

    def start_round(self, rnd: RoundId, coordinator: int | None = None, delay: float = 0.0) -> None:
        index = rnd.coord if coordinator is None else coordinator
        agent = self.coordinators[index]
        self.sim.schedule(delay, lambda: agent.start_round(rnd))

    def decided_values(self) -> list[Hashable]:
        return [l.learned for l in self.learners if l.learned is not None]

    def decision(self) -> Hashable | None:
        values = self.decided_values()
        return values[0] if values else None

    def all_learned(self) -> bool:
        return all(l.learned is not None for l in self.learners)

    def run_until_decided(self, timeout: float = 1_000.0) -> bool:
        return self.sim.run_until(self.all_learned, timeout=timeout)


def build_consensus(
    sim: Runtime,
    n_proposers: int = 1,
    n_coordinators: int = 3,
    n_acceptors: int = 3,
    n_learners: int = 1,
    schedule: RoundSchedule | None = None,
    f: int | None = None,
    e: int | None = None,
    reduce_disk_writes: bool = True,
) -> ConsensusCluster:
    """Deploy a Multicoordinated Paxos consensus instance on *sim*."""
    topology = Topology.build(n_proposers, n_coordinators, n_acceptors, n_learners)
    quorums = QuorumSystem(topology.acceptors, f=f, e=e)
    if schedule is None:
        # Recovery rounds default to single-coordinated (Sections 4.2-4.3):
        # retrying a collided multicoordinated round with another
        # multicoordinated round could collide forever.
        schedule = RoundSchedule(range(n_coordinators), recovery_rtype=1)
    config = ConsensusConfig(
        topology=topology,
        quorums=quorums,
        schedule=schedule,
        reduce_disk_writes=reduce_disk_writes,
    )
    return ConsensusCluster(
        sim=sim,
        config=config,
        proposers=[Proposer(pid, sim, config) for pid in topology.proposers],
        coordinators=[
            Coordinator(pid, sim, config, index)
            for index, pid in enumerate(topology.coordinators)
        ],
        acceptors=[Acceptor(pid, sim, config) for pid in topology.acceptors],
        learners=[Learner(pid, sim, config) for pid in topology.learners],
    )
