"""Executable Abstract Multicoordinated Paxos (Appendix A.2 / B.2).

The paper proves Multicoordinated Paxos correct through a hierarchy of
refinements whose top is *Abstract Multicoordinated Paxos*: a
non-distributed specification over a ballot array ``bA``, a per-balnum
``maxTried`` c-struct and per-learner ``learned`` c-structs.  This module
is a direct executable translation:

* :class:`BallotArray` with the paper's ``chosen at``, ``choosable at`` and
  ``safe at`` predicates (Definitions 2-5);
* :class:`AbstractMCPaxos` with the seven atomic actions
  (``Propose``, ``JoinBallot``, ``StartBallot``, ``Suggest``,
  ``ClassicVote``, ``FastVote``, ``AbstractLearn``), each guarded by its
  enabling condition;
* :meth:`AbstractMCPaxos.check_invariants`, asserting the ``maxTried``,
  ``bA`` and ``learned`` invariants of Appendix A.2 plus the Generalized
  Consensus safety properties (Propositions 2-4).

Balnums here are plain integers 0..max_balnum (0 = Zero, at which every
acceptor initially accepted ⊥), with an explicit fast/classic partition.
The model is exercised by randomized action schedules in the test suite --
a lightweight model-checking pass over the paper's proof obligations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Hashable, Iterable, Sequence

from repro.cstruct.base import CStruct, glb_set, lub_set
from repro.cstruct.commands import Command


class ActionNotEnabled(RuntimeError):
    """Raised when an abstract action's enabling condition does not hold."""


@dataclass
class AbstractQuorums:
    """Per-balnum quorum sets for the abstract model (small n, enumerable)."""

    acceptors: tuple[Hashable, ...]
    classic_size: int
    fast_size: int
    fast_balnums: frozenset[int] = frozenset()

    def is_fast(self, balnum: int) -> bool:
        return balnum in self.fast_balnums

    def quorums(self, balnum: int) -> Iterable[frozenset]:
        size = self.fast_size if self.is_fast(balnum) else self.classic_size
        for combo in combinations(self.acceptors, size):
            yield frozenset(combo)


class BallotArray:
    """The ``bA`` structure: votes per acceptor per balnum, current balnums."""

    def __init__(self, acceptors: Sequence[Hashable], bottom: CStruct) -> None:
        self.acceptors = tuple(acceptors)
        self.bottom = bottom
        self.mbal: dict[Hashable, int] = {a: 0 for a in self.acceptors}
        self.votes: dict[Hashable, dict[int, CStruct]] = {
            a: {0: bottom} for a in self.acceptors
        }

    def vote(self, acceptor: Hashable, balnum: int) -> CStruct | None:
        """``bA_a[m]``, or ``None`` for the paper's ``none``."""
        return self.votes[acceptor].get(balnum)

    def set_vote(self, acceptor: Hashable, balnum: int, value: CStruct) -> None:
        self.votes[acceptor][balnum] = value

    # -- Definitions 2-5 ----------------------------------------------------

    def is_chosen_at(self, value: CStruct, balnum: int, quorums: AbstractQuorums) -> bool:
        """Definition 3: some balnum-quorum accepted an extension of *value*."""
        for quorum in quorums.quorums(balnum):
            if all(
                self.vote(a, balnum) is not None and value.leq(self.vote(a, balnum))
                for a in quorum
            ):
                return True
        return False

    def is_chosen(self, value: CStruct, quorums: AbstractQuorums, max_balnum: int) -> bool:
        return any(
            self.is_chosen_at(value, m, quorums) for m in range(max_balnum + 1)
        )

    def is_choosable_at(self, value: CStruct, balnum: int, quorums: AbstractQuorums) -> bool:
        """Definition 4: *value* is or can still become chosen at *balnum*."""
        for quorum in quorums.quorums(balnum):
            ok = True
            for acceptor in quorum:
                if self.mbal[acceptor] <= balnum:
                    continue  # may still vote an extension of value at balnum
                vote = self.vote(acceptor, balnum)
                if vote is None or not value.leq(vote):
                    ok = False
                    break
            if ok:
                return True
        return False

    def is_safe_at(self, value: CStruct, balnum: int, quorums: AbstractQuorums) -> bool:
        """Definition 5 via maximal choosable values.

        For each lower balnum ``k`` and k-quorum ``Q``: if no member of
        ``Q`` passed ``k`` then *every* c-struct is still choosable and
        nothing is safe; if all constrained members voted, their glb is the
        maximal choosable value through ``Q`` and must be ⊑ *value*.
        """
        for k in range(balnum):
            for quorum in quorums.quorums(k):
                constrained = [a for a in quorum if self.mbal[a] > k]
                if not constrained:
                    return False
                votes = [self.vote(a, k) for a in constrained]
                if any(v is None for v in votes):
                    continue  # nothing choosable through this quorum
                maximal = glb_set(votes)
                if not maximal.leq(value):
                    return False
        return True


@dataclass
class AbstractMCPaxos:
    """The abstract algorithm's state and atomic actions."""

    quorums: AbstractQuorums
    bottom: CStruct
    learners: tuple[Hashable, ...]
    max_balnum: int
    prop_cmd: set[Command] = field(default_factory=set)
    ballot_array: BallotArray = field(init=False)
    max_tried: dict[int, CStruct | None] = field(init=False)
    learned: dict[Hashable, CStruct] = field(init=False)
    _learned_witnesses: dict[Hashable, list[CStruct]] = field(init=False)

    def __post_init__(self) -> None:
        self.ballot_array = BallotArray(self.quorums.acceptors, self.bottom)
        self.max_tried = {m: None for m in range(self.max_balnum + 1)}
        self.max_tried[0] = self.bottom
        self.learned = {l: self.bottom for l in self.learners}
        self._learned_witnesses = {l: [self.bottom] for l in self.learners}

    # -- actions -----------------------------------------------------------

    def propose(self, cmd: Command) -> None:
        """``Propose(C)``."""
        if cmd in self.prop_cmd:
            raise ActionNotEnabled(f"{cmd} already proposed")
        self.prop_cmd.add(cmd)

    def join_ballot(self, acceptor: Hashable, balnum: int) -> None:
        """``JoinBallot(a, m)``."""
        if self.ballot_array.mbal[acceptor] >= balnum:
            raise ActionNotEnabled("balnum not above the acceptor's current one")
        self.ballot_array.mbal[acceptor] = balnum

    def start_ballot(self, balnum: int, value: CStruct) -> None:
        """``StartBallot(m, w)``: first value tried at *balnum*."""
        if self.max_tried[balnum] is not None:
            raise ActionNotEnabled(f"balnum {balnum} already started")
        if not value.command_set() <= self.prop_cmd:
            raise ActionNotEnabled("value contains unproposed commands")
        if not self.ballot_array.is_safe_at(value, balnum, self.quorums):
            raise ActionNotEnabled("value is not safe at the balnum")
        self.max_tried[balnum] = value

    def suggest(self, balnum: int, cmds: Sequence[Command]) -> None:
        """``Suggest(m, σ)``: extend maxTried[m] with proposed commands."""
        if self.max_tried[balnum] is None:
            raise ActionNotEnabled(f"balnum {balnum} not started")
        if not set(cmds) <= self.prop_cmd:
            raise ActionNotEnabled("σ contains unproposed commands")
        self.max_tried[balnum] = self.max_tried[balnum].extend(cmds)

    def classic_vote(self, acceptor: Hashable, balnum: int, value: CStruct) -> None:
        """``ClassicVote(a, m, v)``."""
        ba = self.ballot_array
        if balnum < ba.mbal[acceptor]:
            raise ActionNotEnabled("acceptor already in a higher balnum")
        tried = self.max_tried[balnum]
        if tried is None or not value.leq(tried):
            raise ActionNotEnabled("value is not ⊑ maxTried[m]")
        if not ba.is_safe_at(value, balnum, self.quorums):
            raise ActionNotEnabled("value is not safe at m")
        current = ba.vote(acceptor, balnum)
        if current is not None and not current.leq(value):
            raise ActionNotEnabled("value does not extend the current vote")
        ba.set_vote(acceptor, balnum, value)
        ba.mbal[acceptor] = balnum

    def fast_vote(self, acceptor: Hashable, cmd: Command) -> None:
        """``FastVote(a, C)``."""
        ba = self.ballot_array
        balnum = ba.mbal[acceptor]
        if cmd not in self.prop_cmd:
            raise ActionNotEnabled("command not proposed")
        if not self.quorums.is_fast(balnum):
            raise ActionNotEnabled("acceptor's current balnum is not fast")
        current = ba.vote(acceptor, balnum)
        if current is None:
            raise ActionNotEnabled("no value accepted yet at the fast balnum")
        ba.set_vote(acceptor, balnum, current.append(cmd))

    def learn(self, learner: Hashable, value: CStruct) -> None:
        """``AbstractLearn(l, v)``."""
        if not self.ballot_array.is_chosen(value, self.quorums, self.max_balnum):
            raise ActionNotEnabled("value is not chosen")
        self.learned[learner] = self.learned[learner].lub(value)
        self._learned_witnesses[learner].append(value)

    # -- helper used by drivers ------------------------------------------------

    def proved_safe(self, quorum: frozenset, balnum: int) -> list[CStruct]:
        """``ProvedSafe(Q, m, bA)`` of the PaxosConstants module.

        Returns pickable values for *balnum* given 1b information from
        *quorum* (whose members must have joined *balnum*).
        """
        ba = self.ballot_array
        lower = [
            k
            for k in range(balnum)
            if any(ba.vote(a, k) is not None for a in quorum)
        ]
        k = max(lower)
        reporters = {a for a in quorum if ba.vote(a, k) is not None}
        rs = [
            r for r in self.quorums.quorums(k) if (r & quorum) <= reporters and r & quorum
        ]
        if not rs:
            return [ba.vote(a, k) for a in sorted(reporters)]
        gamma = [glb_set([ba.vote(a, k) for a in r & quorum]) for r in rs]
        return [lub_set(gamma)]

    # -- invariants (Appendix A.2) ---------------------------------------------

    def check_invariants(self) -> None:
        """Assert the maxTried, bA and learned invariants and safety."""
        ba = self.ballot_array
        for m, tried in self.max_tried.items():
            if tried is None:
                continue
            assert tried.command_set() <= self.prop_cmd, "maxTried: proposed"
            assert ba.is_safe_at(tried, m, self.quorums), "maxTried: safe at m"
        for acceptor in ba.acceptors:
            for m, vote in ba.votes[acceptor].items():
                if vote is None:
                    continue
                assert ba.is_safe_at(vote, m, self.quorums), "bA: safe at m"
                if self.quorums.is_fast(m):
                    assert vote.command_set() <= self.prop_cmd, "bA: fast proposed"
                elif m > 0:
                    tried = self.max_tried[m]
                    assert tried is not None and vote.leq(tried), "bA: ⊑ maxTried"
        chosen_witnesses: list[CStruct] = []
        for learner in self.learners:
            value = self.learned[learner]
            assert value.command_set() <= self.prop_cmd, "learned: proposed"
            witnesses = self._learned_witnesses[learner]
            assert value == lub_set(witnesses), "learned: lub of chosen values"
            chosen_witnesses.append(value)
        # Consistency (Proposition 3): learned values pairwise compatible.
        for i, a in enumerate(chosen_witnesses):
            for b in chosen_witnesses[i + 1 :]:
                assert a.is_compatible(b), "consistency: learned values compatible"
