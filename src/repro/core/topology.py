"""Deployment topology: naming and addressing of protocol agents.

A :class:`Topology` fixes the process identifiers of the four agent roles
(Section 2.1: proposers, coordinators, acceptors, learners) within one
simulation.  Coordinator *indices* (integers, used inside round numbers and
coordinator quorums) map to process ids here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass(frozen=True)
class Topology:
    """Process ids per role."""

    proposers: tuple[str, ...]
    coordinators: tuple[str, ...]
    acceptors: tuple[str, ...]
    learners: tuple[str, ...]

    @classmethod
    def build(
        cls,
        n_proposers: int,
        n_coordinators: int,
        n_acceptors: int,
        n_learners: int,
    ) -> "Topology":
        return cls(
            proposers=tuple(f"prop{i}" for i in range(n_proposers)),
            coordinators=tuple(f"coord{i}" for i in range(n_coordinators)),
            acceptors=tuple(f"acc{i}" for i in range(n_acceptors)),
            learners=tuple(f"learn{i}" for i in range(n_learners)),
        )

    @property
    def coordinator_indices(self) -> tuple[int, ...]:
        return tuple(range(len(self.coordinators)))

    def coordinator_pid(self, index: int) -> str:
        return self.coordinators[index]

    def coordinator_pids(self, indices: Iterable[int]) -> list[str]:
        return [self.coordinators[i] for i in sorted(indices)]

    def coordinator_index(self, pid: str) -> int:
        return self.coordinators.index(pid)
