"""Acceptor and coordinator quorum systems (Assumptions 1, 2 and 3).

Following Section 3.3 we use cardinality-based quorums.  With ``n``
acceptors, ``F`` the number of failures that must not prevent progress and
``E`` the number of failures that still allows *fast* termination:

* a classic quorum is any set of ``n - F`` acceptors,
* a fast quorum is any set of ``n - E`` acceptors,
* Assumption 1 (classic intersection) requires ``n > 2F``,
* Assumption 2 (fast intersection) additionally requires ``n > 2E + F``.

The defaults maximize resilience: ``F = ⌈n/2⌉ - 1`` (majority quorums) and
``E`` the largest value with ``2E + F < n``.  Experiment E2 sweeps these
formulas and checks the paper's headline sizes (fast quorums ≥ ⌈3n/4⌉ when
classic quorums are majorities; ⌈(2n+1)/3⌉ when E = F).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Sequence


class QuorumSystem:
    """Cardinality quorums over a fixed acceptor set."""

    def __init__(
        self,
        acceptors: Sequence,
        f: int | None = None,
        e: int | None = None,
    ) -> None:
        self.acceptors = tuple(sorted(acceptors))
        n = len(self.acceptors)
        if n == 0:
            raise ValueError("need at least one acceptor")
        if f is None:
            f = (n - 1) // 2
        if e is None:
            e = max((n - f - 1) // 2, 0)
        if f < 0 or e < 0:
            raise ValueError("failure tolerances must be non-negative")
        if e > f:
            raise ValueError(f"fast tolerance E={e} cannot exceed classic tolerance F={f}")
        if n <= 2 * f:
            raise ValueError(f"Assumption 1 violated: need n > 2F (n={n}, F={f})")
        if n <= 2 * e + f:
            raise ValueError(f"Assumption 2 violated: need n > 2E + F (n={n}, E={e}, F={f})")
        self.n = n
        self.f = f
        self.e = e

    # -- sizes ---------------------------------------------------------------

    @property
    def classic_quorum_size(self) -> int:
        return self.n - self.f

    @property
    def fast_quorum_size(self) -> int:
        return self.n - self.e

    def quorum_size(self, fast: bool) -> int:
        return self.fast_quorum_size if fast else self.classic_quorum_size

    def min_intersection(self, size_a: int, size_b: int) -> int:
        """Smallest possible intersection of sets of the given sizes."""
        return size_a + size_b - self.n

    # -- membership ------------------------------------------------------------

    def is_quorum(self, members: Iterable, fast: bool = False) -> bool:
        members = set(members) & set(self.acceptors)
        return len(members) >= self.quorum_size(fast)

    def quorums(self, fast: bool = False) -> Iterator[frozenset]:
        """Enumerate the minimal quorums (for model checking; small n only)."""
        size = self.quorum_size(fast)
        for combo in combinations(self.acceptors, size):
            yield frozenset(combo)

    # -- verification ---------------------------------------------------------

    def check_assumptions(self, exhaustive: bool = False) -> None:
        """Assert Assumptions 1 and 2.

        The cardinality arithmetic is always checked; with
        ``exhaustive=True`` the quorum sets are enumerated and intersected
        explicitly (tests use this for small n).
        """
        assert self.min_intersection(self.classic_quorum_size, self.classic_quorum_size) >= 1
        assert self.min_intersection(self.classic_quorum_size, self.fast_quorum_size) >= 1
        assert (
            2 * self.fast_quorum_size + self.classic_quorum_size - 2 * self.n >= 1
        ), "Assumption 2: Q ∩ R1 ∩ R2 must be non-empty for fast R1, R2"
        if not exhaustive:
            return
        classic = list(self.quorums(fast=False))
        fast = list(self.quorums(fast=True))
        for q in classic + fast:
            for r in classic + fast:
                assert q & r, f"Assumption 1/2 violated: {q} ∩ {r} = ∅"
        for q in classic + fast:
            for r1 in fast:
                for r2 in fast:
                    assert q & r1 & r2, "Assumption 2 violated (triple intersection)"

    def __repr__(self) -> str:
        return f"QuorumSystem(n={self.n}, F={self.f}, E={self.e})"


class CoordinatorQuorums:
    """Helper for Assumption 3 checks over explicit coordinator quorums."""

    def __init__(self, quorums: Sequence[frozenset]) -> None:
        self.quorums = tuple(frozenset(q) for q in quorums)
        if not self.quorums:
            raise ValueError("need at least one coordinator quorum")

    def check_assumption(self) -> None:
        """Assert Assumption 3: same-round classic quorums intersect."""
        for p in self.quorums:
            for q in self.quorums:
                assert p & q, f"Assumption 3 violated: {p} ∩ {q} = ∅"

    def covered_by(self, members: frozenset) -> bool:
        return any(q <= members for q in self.quorums)


def paper_quorum_sizes(n: int) -> dict[str, int]:
    """Headline quorum sizes from Section 2.2 for *n* acceptors.

    Returns the classic-majority configuration (F maximal) and the derived
    fast quorum size, plus the balanced configuration where every quorum is
    both fast and classic (size ⌈(2n+1)/3⌉).
    """
    f = (n - 1) // 2
    e = (n - f - 1) // 2
    balanced = -(-(2 * n + 1) // 3)  # ceil((2n+1)/3)
    return {
        "n": n,
        "F": f,
        "E": e,
        "classic_quorum": n - f,
        "fast_quorum": n - e,
        "balanced_quorum": balanced,
    }
