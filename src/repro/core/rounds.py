"""Round numbers and round schedules (Sections 4.4 and 4.5).

Round numbers ("ballot numbers") are records
``⟨MCount:mCount, Id, RType⟩`` ordered lexicographically:

* ``MCount``/``mCount`` -- the major/minor components of the Count field.
  The major component changes only across acceptor recoveries (the
  disk-write reduction of Section 4.4 writes ``rnd`` to disk only when
  MCount grows); the minor component increases for ordinary new rounds.
* ``Id`` -- the identifier of the coordinator that created the round.
* ``RType`` -- the round-type number; a :class:`RoundSchedule` maps it to
  *fast*, *single-coordinated classic* or *multicoordinated classic* and to
  the round's coordinator quorums (the paper's informative ``S`` field).

``Zero`` is the smallest round; every acceptor implicitly accepts ⊥ at it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import total_ordering
from typing import Sequence


class RoundKind(enum.Enum):
    """Execution mode of a round (Sections 2.2, 3.1 and 4.1)."""

    FAST = "fast"
    SINGLE = "single-coordinated"
    MULTI = "multicoordinated"

    @property
    def is_fast(self) -> bool:
        return self is RoundKind.FAST

    @property
    def is_classic(self) -> bool:
        return not self.is_fast


@total_ordering
@dataclass(frozen=True)
class RoundId:
    """A round (ballot) number.

    Ordered lexicographically on ``(mcount, count, coord, rtype)`` as
    prescribed in Section 4.4 (the quorum-set field ``S`` is informative
    and lives in the :class:`RoundSchedule`, not in the number).
    """

    mcount: int = 0
    count: int = 0
    coord: int = -1
    rtype: int = 0

    def sort_key(self) -> tuple[int, int, int, int]:
        return (self.mcount, self.count, self.coord, self.rtype)

    def __lt__(self, other: "RoundId") -> bool:
        if not isinstance(other, RoundId):
            return NotImplemented
        return self.sort_key() < other.sort_key()

    def __str__(self) -> str:
        return f"⟨{self.mcount}:{self.count},c{self.coord},t{self.rtype}⟩"


ZERO = RoundId(0, 0, -1, 0)
"""The smallest round; acceptors start with ``vrnd = ZERO`` and ``vval = ⊥``."""


@dataclass(frozen=True)
class RoundTypePolicy:
    """Maps RType numbers to :class:`RoundKind` (Section 4.5 scenarios).

    The default policy maps 0 → fast, 1 → single-coordinated,
    2 → multicoordinated.  "Clustered" deployments can map a whole range of
    RTypes to fast so that fast rounds follow fast rounds during
    uncoordinated recovery; "conflict-prone" deployments map everything to
    single-coordinated.
    """

    fast_rtypes: frozenset[int] = frozenset({0})
    multi_rtypes: frozenset[int] = frozenset({2})

    def kind(self, rtype: int) -> RoundKind:
        if rtype in self.fast_rtypes:
            return RoundKind.FAST
        if rtype in self.multi_rtypes:
            return RoundKind.MULTI
        return RoundKind.SINGLE


class RoundSchedule:
    """Round semantics shared by all agents of one protocol deployment.

    Decides, for every :class:`RoundId`:

    * its :class:`RoundKind` (via the :class:`RoundTypePolicy`);
    * its coordinator quorums (the ``S`` field of Section 4.4):

      - single-coordinated rounds: the creating coordinator alone,
      - multicoordinated rounds: every majority of the coordinator set,
      - fast rounds: every single coordinator is a quorum by itself
        (Assumption 3 places no constraint on fast rounds);

    * the successor round used by collision recovery
      (:meth:`next_round`), whose RType is configurable per Section 4.5
      (multicoordinated rounds should be followed by single-coordinated
      ones to guarantee progress under persistent conflicts).
    """

    def __init__(
        self,
        coordinators: Sequence[int],
        policy: RoundTypePolicy | None = None,
        recovery_rtype: int | None = None,
    ) -> None:
        if not coordinators:
            raise ValueError("a round schedule needs at least one coordinator")
        self.coordinators = tuple(sorted(coordinators))
        self.policy = policy or RoundTypePolicy()
        self.recovery_rtype = recovery_rtype

    # -- round classification ---------------------------------------------

    def kind(self, rnd: RoundId) -> RoundKind:
        if rnd == ZERO:
            # Zero is the implicit initial round at which every acceptor has
            # accepted ⊥; no coordinator acts in it and it is never fast.
            return RoundKind.SINGLE
        return self.policy.kind(rnd.rtype)

    def is_fast(self, rnd: RoundId) -> bool:
        return self.kind(rnd).is_fast

    # -- coordinator quorums (Assumption 3) --------------------------------

    def coord_quorums(self, rnd: RoundId) -> tuple[frozenset[int], ...]:
        """All coordinator quorums of *rnd*."""
        if rnd == ZERO:
            return ()
        kind = self.kind(rnd)
        if kind is RoundKind.SINGLE:
            if rnd.coord not in self.coordinators:
                raise ValueError(f"round {rnd} created by unknown coordinator")
            return (frozenset({rnd.coord}),)
        if kind is RoundKind.FAST:
            return tuple(frozenset({c}) for c in self.coordinators)
        return majorities(self.coordinators)

    def coordinators_of(self, rnd: RoundId) -> frozenset[int]:
        """Union of the coordinator quorums of *rnd*."""
        members: set[int] = set()
        for quorum in self.coord_quorums(rnd):
            members |= quorum
        return frozenset(members)

    def is_coordinator_of(self, coord: int, rnd: RoundId) -> bool:
        return coord in self.coordinators_of(rnd)

    def is_coord_quorum(self, rnd: RoundId, members: frozenset[int]) -> bool:
        """Whether *members* contains a coordinator quorum of *rnd*."""
        return any(quorum <= members for quorum in self.coord_quorums(rnd))

    # -- round construction --------------------------------------------------

    def make_round(self, coord: int, count: int, rtype: int, mcount: int = 0) -> RoundId:
        """Create a round number owned by *coord*."""
        if count < 1:
            raise ValueError("user rounds must have count >= 1 (0 is reserved for Zero)")
        return RoundId(mcount=mcount, count=count, coord=coord, rtype=rtype)

    def next_round(self, rnd: RoundId, rtype: int | None = None) -> RoundId:
        """``NextRound(i)``: the successor used for collision recovery.

        Keeps the creating coordinator and increments the minor count.  The
        RType defaults to the schedule's ``recovery_rtype`` (when set) so
        deployments can force e.g. multicoordinated → single-coordinated
        successors.
        """
        if rtype is None:
            rtype = self.recovery_rtype if self.recovery_rtype is not None else rnd.rtype
        return RoundId(
            mcount=rnd.mcount,
            count=rnd.count + 1,
            coord=rnd.coord,
            rtype=rtype,
        )


def majorities(members: Sequence[int]) -> tuple[frozenset[int], ...]:
    """All minimal majorities of *members* (any two intersect: Assumption 3)."""
    from itertools import combinations

    members = tuple(sorted(members))
    size = len(members) // 2 + 1
    return tuple(frozenset(combo) for combo in combinations(members, size))
