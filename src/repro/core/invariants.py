"""Run-level safety oracles for the distributed protocols.

These checkers attach to a :class:`repro.sim.scheduler.Simulation` via
``add_invariant_check`` and verify, after *every* processed event, the
safety properties of (Generalized) Consensus as defined in Sections 2.1.1
and 2.3.2:

* Nontriviality -- learned values are built from proposed commands only;
* Stability -- a learner's value only ever grows (or, for consensus, never
  changes once set);
* Consistency -- learned values are pairwise compatible (equal, for
  consensus).

Randomized tests with crashes, message loss and duplication run under these
oracles, so every delivered message is checked against the paper's proof
obligations rather than only the final state.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from repro.cstruct.base import CStruct


class SafetyViolation(AssertionError):
    """A safety property of the paper was violated during a run."""


class ConsensusInvariants:
    """Oracle for the consensus protocols (single learned value)."""

    def __init__(self, learners: Iterable, proposed: Iterable[Hashable]) -> None:
        self.learners = list(learners)
        self.proposed = set(proposed)
        self._snapshots: dict[Hashable, Hashable] = {}

    def allow(self, cmd: Hashable) -> None:
        """Register another proposed value (for incremental workloads)."""
        self.proposed.add(cmd)

    def __call__(self, sim) -> None:
        decided = []
        for learner in self.learners:
            value = learner.learned
            if value is None:
                continue
            if value not in self.proposed:
                raise SafetyViolation(
                    f"nontriviality: {learner.pid} learned unproposed {value!r}"
                )
            previous = self._snapshots.get(learner.pid)
            if previous is not None and previous != value:
                raise SafetyViolation(
                    f"stability: {learner.pid} changed {previous!r} -> {value!r}"
                )
            self._snapshots[learner.pid] = value
            decided.append((learner.pid, value))
        for i, (pid_a, val_a) in enumerate(decided):
            for pid_b, val_b in decided[i + 1 :]:
                if val_a != val_b:
                    raise SafetyViolation(
                        f"consistency: {pid_a} learned {val_a!r} but {pid_b} "
                        f"learned {val_b!r}"
                    )


class GeneralizedInvariants:
    """Oracle for the generalized protocols (learned c-structs)."""

    def __init__(self, learners: Iterable, proposed: Iterable = ()) -> None:
        self.learners = list(learners)
        self.proposed = set(proposed)
        self._snapshots: dict[Hashable, CStruct] = {}

    def allow(self, cmd) -> None:
        self.proposed.add(cmd)

    def __call__(self, sim) -> None:
        values: list[tuple[Hashable, CStruct]] = []
        for learner in self.learners:
            value: CStruct = learner.learned
            if not value.command_set() <= self.proposed:
                extra = value.command_set() - self.proposed
                raise SafetyViolation(
                    f"nontriviality: {learner.pid} learned unproposed {extra!r}"
                )
            previous = self._snapshots.get(learner.pid)
            if previous is not None and not previous.leq(value):
                raise SafetyViolation(
                    f"stability: {learner.pid} regressed {previous} -> {value}"
                )
            self._snapshots[learner.pid] = value
            values.append((learner.pid, value))
        for i, (pid_a, val_a) in enumerate(values):
            for pid_b, val_b in values[i + 1 :]:
                if not val_a.is_compatible(val_b):
                    raise SafetyViolation(
                        f"consistency: {pid_a}'s {val_a} incompatible with "
                        f"{pid_b}'s {val_b}"
                    )


def attach_consensus_oracle(sim, cluster, proposed: Iterable[Hashable]) -> ConsensusInvariants:
    """Attach a :class:`ConsensusInvariants` oracle to *sim* and return it."""
    oracle = ConsensusInvariants(cluster.learners, proposed)
    sim.add_invariant_check(oracle)
    return oracle


def attach_generalized_oracle(sim, cluster, proposed: Iterable = ()) -> GeneralizedInvariants:
    """Attach a :class:`GeneralizedInvariants` oracle to *sim* and return it."""
    oracle = GeneralizedInvariants(cluster.learners, proposed)
    sim.add_invariant_check(oracle)
    return oracle
