"""Generic Broadcast (Section 3.3) as a service facade.

Generic broadcast delivers commands to every learner so that conflicting
commands are delivered in the same relative order everywhere, while
commuting commands may be delivered in any order.  It is Generalized
Consensus over :class:`repro.cstruct.history.CommandHistory` c-structs,
which is exactly what :mod:`repro.core.generalized` implements; this module
packages the deployment (conflict relation in, delivery callbacks out) for
applications such as the replicated state machines in :mod:`repro.smr`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.generalized import GeneralizedCluster, build_generalized
from repro.core.liveness import LivenessConfig
from repro.core.rounds import RoundId, RoundSchedule
from repro.cstruct.commands import Command, ConflictRelation
from repro.cstruct.history import CommandHistory
from repro.sim.scheduler import Simulation

DeliveryCallback = Callable[[str, Command], None]


@dataclass
class GenericBroadcast:
    """A generic-broadcast service over Multicoordinated Paxos."""

    cluster: GeneralizedCluster
    conflict: ConflictRelation

    @classmethod
    def deploy(
        cls,
        sim: Simulation,
        conflict: ConflictRelation,
        n_proposers: int = 2,
        n_coordinators: int = 3,
        n_acceptors: int = 3,
        n_learners: int = 2,
        schedule: RoundSchedule | None = None,
        liveness: LivenessConfig | None = None,
        f: int | None = None,
        e: int | None = None,
    ) -> "GenericBroadcast":
        cluster = build_generalized(
            sim,
            bottom=CommandHistory.bottom(conflict),
            n_proposers=n_proposers,
            n_coordinators=n_coordinators,
            n_acceptors=n_acceptors,
            n_learners=n_learners,
            schedule=schedule,
            liveness=liveness,
            f=f,
            e=e,
        )
        return cls(cluster=cluster, conflict=conflict)

    def start_round(self, rnd: RoundId, delay: float = 0.0) -> None:
        self.cluster.start_round(rnd, delay=delay)

    def broadcast(self, cmd: Command, delay: float = 0.0) -> None:
        """g-Broadcast *cmd* (propose it to the agreement layer)."""
        self.cluster.propose(cmd, delay=delay)

    def on_deliver(self, callback: DeliveryCallback) -> None:
        """Register ``callback(learner_pid, command)`` for g-Deliver events.

        Commands are delivered per learner in an order that linearizes the
        learned command history, so conflicting commands are delivered in
        the same order at every learner.
        """
        for learner in self.cluster.learners:
            pid = learner.pid

            def handler(new_cmds, learned, pid=pid):
                for cmd in new_cmds:
                    callback(pid, cmd)

            learner.on_learn(handler)

    def delivered_histories(self) -> list[CommandHistory]:
        return [l.learned for l in self.cluster.learners]
