"""Per-client dedup sessions with sliding windows.

Learners deduplicate deliveries with per-command *sets* (``_seen`` in
the generalized engine, ``_delivered_set`` in the instances engine) that
grow without bound.  This module replaces them with the bounded shape
Raft's client sessions use (Ongaro's dissertation, ch. 6): commands
whose ids look like ``"<client>:<seq>"`` are tracked as per-client
interval runs of delivered sequence numbers under a sliding window --
O(window x active clients) retained cells however long the run --
while commands without a session id fall back to an exact overflow set.

The window is a contract with the client: a client may have at most
``window`` commands in flight, and sequence numbers are issued in
order.  Once a client's highest delivered sequence passes ``floor +
window`` the floor slides up and everything at or below it is treated
as delivered -- a retried command that stale would be (correctly, under
the contract) dropped as a duplicate.  :class:`repro.smr.client.Client`
with a ``session`` honors the contract by construction: its pipeline
window is bounded and sequences are stamped in issue order.

:class:`SessionMembers` is the matching *membership claim*: the compact
form of a checkpoint's command set (``ICheckpoint.members`` and
snapshot payloads), duck-typing the frozenset operations the
stable-prefix machinery uses (`in`, ``isdisjoint``, ``len``, union /
intersection) so `CommandHistory.stable_split` and friends take either
representation.  It is a value, not a message.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.cstruct.digest import (
    runs_add,
    runs_clamp,
    runs_contains,
    runs_count,
    runs_intersect,
    runs_issubset,
    runs_merge,
)

DEFAULT_WINDOW = 1024


@dataclass
class SessionConfig:
    """Enables bounded learner dedup via per-client session windows.

    ``window`` must exceed every client's maximum in-flight pipeline
    (see the module docstring); the generous default keeps the contract
    safe for any client this repository constructs.
    """

    window: int = DEFAULT_WINDOW

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be positive")


def session_key(cmd: object) -> tuple[str, int] | None:
    """``(client, seq)`` when *cmd* carries a session id, else None.

    A session id is a command id of the form ``"<client>:<seq>"`` with a
    non-empty client part and a decimal sequence -- exactly what
    :class:`repro.smr.client.Client` stamps when given a ``session``.
    """
    cid = getattr(cmd, "cid", None)
    if not isinstance(cid, str):
        return None
    client, sep, tail = cid.rpartition(":")
    if not sep or not client or not tail.isdigit():
        return None
    return client, int(tail)


@dataclass(frozen=True)
class SessionMembers:
    """A compact membership claim over a delivered command set.

    ``clients`` maps client name -> normalized inclusive ``(lo, hi)``
    runs of delivered sequence numbers (sorted by name); ``extra``
    holds the delivered commands without session ids exactly.
    """

    clients: tuple = ()
    extra: frozenset = frozenset()

    def _index(self) -> dict:
        cache = getattr(self, "_client_index", None)
        if cache is None:
            cache = {name: runs for name, runs in self.clients}
            object.__setattr__(self, "_client_index", cache)
        return cache

    @classmethod
    def from_commands(cls, cmds: Iterable) -> "SessionMembers":
        clients: dict[str, list] = {}
        extra = set()
        for cmd in cmds:
            key = session_key(cmd)
            if key is None:
                extra.add(cmd)
            else:
                runs_add(clients.setdefault(key[0], []), key[1])
        return cls(
            clients=tuple(
                sorted(
                    (name, tuple(tuple(r) for r in runs))
                    for name, runs in clients.items()
                )
            ),
            extra=frozenset(extra),
        )

    def __contains__(self, cmd: object) -> bool:
        key = session_key(cmd)
        if key is None:
            return cmd in self.extra
        runs = self._index().get(key[0])
        return runs is not None and runs_contains(runs, key[1])

    def __len__(self) -> int:
        return sum(runs_count(runs) for _, runs in self.clients) + len(self.extra)

    def __bool__(self) -> bool:
        return bool(self.clients or self.extra)

    def isdisjoint(self, other: Iterable) -> bool:
        return not any(cmd in self for cmd in other)

    def union(self, other) -> "SessionMembers":
        if not isinstance(other, SessionMembers):
            other = SessionMembers.from_commands(other)
        merged = {name: runs for name, runs in self.clients}
        for name, runs in other.clients:
            mine = merged.get(name)
            merged[name] = runs_merge(mine, runs) if mine else runs
        return SessionMembers(
            tuple(sorted(merged.items())), self.extra | other.extra
        )

    def intersection(self, other) -> "SessionMembers":
        if not isinstance(other, SessionMembers):
            other = SessionMembers.from_commands(other)
        index = other._index()
        out = {}
        for name, runs in self.clients:
            theirs = index.get(name)
            if theirs:
                shared = runs_intersect(runs, theirs)
                if shared:
                    out[name] = shared
        return SessionMembers(
            tuple(sorted(out.items())), self.extra & other.extra
        )


def members_union(a, b):
    """Union over mixed frozenset / SessionMembers representations."""
    if isinstance(a, SessionMembers):
        return a.union(b)
    if isinstance(b, SessionMembers):
        return b.union(a)
    return a | b


def members_intersection(a, b):
    """Intersection over mixed frozenset / SessionMembers representations."""
    if isinstance(a, SessionMembers):
        return a.intersection(b)
    if isinstance(b, SessionMembers):
        return b.intersection(a)
    return a & b


class SessionDedup:
    """A bounded seen-set: per-client sliding windows + an overflow set.

    Drop-in for the learners' dedup sets: supports ``in``, ``add``
    (True when newly seen), ``update`` and ``len`` (the monotone count
    of distinct commands ever seen -- the learners' progress measure).
    Retained memory is O(window x clients + overflow) regardless of how
    many commands have passed through.
    """

    def __init__(self, window: int = DEFAULT_WINDOW) -> None:
        self.window = window
        self._clients: dict[str, list] = {}  # name -> [floor, runs-list]
        self._extra: set = set()
        self._total = 0

    def __contains__(self, cmd: object) -> bool:
        key = session_key(cmd)
        if key is None:
            return cmd in self._extra
        state = self._clients.get(key[0])
        if state is None:
            return False
        floor, runs = state
        return key[1] <= floor or runs_contains(runs, key[1])

    def add(self, cmd: Hashable) -> bool:
        key = session_key(cmd)
        if key is None:
            if cmd in self._extra:
                return False
            self._extra.add(cmd)
            self._total += 1
            return True
        client, seq = key
        state = self._clients.setdefault(client, [-1, []])
        if seq <= state[0] or not runs_add(state[1], seq):
            return False
        self._total += 1
        top = state[1][-1][1]
        if top - self.window > state[0]:
            state[0] = top - self.window
            runs_clamp(state[1], state[0])
        return True

    def update(self, cmds: Iterable) -> None:
        for cmd in cmds:
            self.add(cmd)

    def __len__(self) -> int:
        return self._total

    def __bool__(self) -> bool:
        return self._total > 0

    def retained(self) -> int:
        """Retained dedup cells: floors + interval endpoints + overflow.

        The boundedness metric E15 tracks: stays ~flat in history length
        under the window contract, unlike a seen-*set*'s cardinality.
        """
        return len(self._extra) + sum(
            1 + 2 * len(runs) for _, runs in self._clients.values()
        )

    def covers(self, members) -> bool:
        """Does this dedup state include every member of the claim?"""
        if isinstance(members, SessionMembers):
            for name, runs in members.clients:
                state = self._clients.get(name)
                if state is None:
                    return not runs
                floor, own = state
                cover = runs_merge(
                    ((0, floor),) if floor >= 0 else (), own
                )
                if not runs_issubset(runs, cover):
                    return False
            return all(cmd in self for cmd in members.extra)
        return all(cmd in self for cmd in members)

    def members(self) -> SessionMembers:
        """The membership claim for everything this dedup has seen."""
        clients = []
        for name in sorted(self._clients):
            floor, runs = self._clients[name]
            clients.append(
                (name, runs_merge(((0, floor),) if floor >= 0 else (), runs))
            )
        return SessionMembers(tuple(clients), frozenset(self._extra))

    def state(self) -> tuple:
        """A serializable snapshot of the dedup (rides checkpoints)."""
        return (
            tuple(
                sorted(
                    (name, floor, tuple(tuple(r) for r in runs))
                    for name, (floor, runs) in self._clients.items()
                )
            ),
            tuple(sorted(self._extra, key=repr)),
        )

    @classmethod
    def restore(cls, state: tuple, window: int) -> "SessionDedup":
        dedup = cls(window)
        clients, extra = state
        for name, floor, runs in clients:
            dedup._clients[name] = [floor, [list(r) for r in runs]]
            dedup._total += (floor + 1 if floor >= 0 else 0) + runs_count(runs)
        dedup._extra = set(extra)
        dedup._total += len(dedup._extra)
        return dedup
