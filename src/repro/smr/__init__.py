"""State-machine replication on top of the agreement protocols.

The paper's application framing: replicas apply deterministic commands from
an agreed (partially or totally ordered) command structure.

* :mod:`repro.smr.machine` -- the state-machine interface and a key-value
  store whose operations define a natural conflict relation;
* :mod:`repro.smr.replica` -- replicas driven by generic-broadcast
  learners (one generalized instance) or by Classic Paxos learners (one
  consensus instance per command);
* :mod:`repro.smr.client` -- clients issuing commands and tracking
  completion;
* :mod:`repro.smr.instances` -- the multicoordinated MultiPaxos engine
  (one instance per command or per :class:`repro.smr.instances.Batch`)
  with optional batching + pipelining.
"""

from repro.smr.client import Client
from repro.smr.instances import Batch, BatchingConfig, build_smr
from repro.smr.machine import KVStore, StateMachine, kv_conflict
from repro.smr.replica import BroadcastReplica, OrderedReplica

__all__ = [
    "Batch",
    "BatchingConfig",
    "BroadcastReplica",
    "Client",
    "KVStore",
    "OrderedReplica",
    "StateMachine",
    "build_smr",
    "kv_conflict",
]
