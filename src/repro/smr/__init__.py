"""State-machine replication on top of the agreement protocols.

The paper's application framing: replicas apply deterministic commands from
an agreed (partially or totally ordered) command structure.

* :mod:`repro.smr.machine` -- the state-machine interface and a key-value
  store whose operations define a natural conflict relation;
* :mod:`repro.smr.replica` -- replicas driven by generic-broadcast
  learners (one generalized instance) or by Classic Paxos learners (one
  consensus instance per command);
* :mod:`repro.smr.client` -- clients issuing commands and tracking
  completion.
"""

from repro.smr.client import Client
from repro.smr.machine import KVStore, StateMachine, kv_conflict
from repro.smr.replica import BroadcastReplica, OrderedReplica

__all__ = [
    "BroadcastReplica",
    "Client",
    "KVStore",
    "OrderedReplica",
    "StateMachine",
    "kv_conflict",
]
