"""Clients: issue commands and track completion.

A :class:`Client` proposes commands through a cluster (generalized or
classic) and observes completion via replica execution callbacks, giving
end-to-end request latency on top of the protocol-level propose-to-learn
metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cstruct.commands import Command


@dataclass
class Client:
    """A closed-loop or open-loop command issuer.

    With ``retry_interval`` set the client resubmits a command that has
    not completed within that span, doubling the wait each attempt (at
    most ``max_retries`` resubmissions).  Resubmission is safe end to end:
    coordinators deduplicate in-flight proposals, and replicas execute a
    command at most once even if it is decided in two instances.  It is
    the client-side backstop of the engine's own retransmission layer --
    useful when proposers may crash and lose even their stable storage.
    """

    name: str
    cluster: object  # any cluster exposing .propose(cmd, delay=...)
    retry_interval: float | None = None
    max_retries: int = 8
    issued: list[Command] = field(default_factory=list)
    completed: dict[Command, float] = field(default_factory=dict)
    issue_times: dict[Command, float] = field(default_factory=dict)
    retries: dict[Command, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.retry_interval is not None and self.retry_interval <= 0:
            raise ValueError("retry_interval must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def issue(self, cmd: Command, delay: float = 0.0) -> Command:
        """Propose *cmd* after *delay* simulated time units."""
        sim = self.cluster.sim
        self.issued.append(cmd)

        def fire() -> None:
            self.issue_times[cmd] = sim.clock
            # Route through the cluster's proposer rotation.
            self.cluster.propose(cmd)
            if self.retry_interval is not None:
                sim.schedule(self.retry_interval, lambda: self._watchdog(cmd))

        sim.schedule(delay, fire)
        return cmd

    def _watchdog(self, cmd: Command) -> None:
        if cmd in self.completed:
            return
        attempts = self.retries.get(cmd, 0)
        if attempts >= self.max_retries:
            return
        self.retries[cmd] = attempts + 1
        self.cluster.propose(cmd)
        backoff = self.retry_interval * (2 ** (attempts + 1))
        self.cluster.sim.schedule(backoff, lambda: self._watchdog(cmd))

    def watch_replica(self, replica) -> None:
        """Record completion when *replica* executes one of our commands."""

        def observer(cmd, result) -> None:
            if cmd in self.issue_times and cmd not in self.completed:
                self.completed[cmd] = self.cluster.sim.clock

        replica.on_execute(observer)

    def latency(self, cmd: Command) -> float | None:
        if cmd not in self.completed or cmd not in self.issue_times:
            return None
        return self.completed[cmd] - self.issue_times[cmd]

    def all_completed(self) -> bool:
        return all(cmd in self.completed for cmd in self.issued)
