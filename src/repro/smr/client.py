"""Clients: issue commands and track completion.

A :class:`Client` proposes commands through a cluster (generalized or
classic) and observes completion via replica execution callbacks, giving
end-to-end request latency on top of the protocol-level propose-to-learn
metric.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.cstruct.commands import Command


@dataclass
class Client:
    """A closed-loop or open-loop command issuer.

    With ``retry_interval`` set the client resubmits a command that has
    not completed within that span, doubling the wait each attempt (at
    most ``max_retries`` resubmissions).  Resubmission is safe end to end:
    coordinators deduplicate in-flight proposals, and replicas execute a
    command at most once even if it is decided in two instances.  It is
    the client-side backstop of the engine's own retransmission layer --
    useful when proposers may crash and lose even their stable storage.

    With ``session`` set the client stamps every command it *creates*
    (:meth:`make_command`) with a ``"<session>:<seq>"`` id in issue
    order, opting in to the learners' bounded per-client dedup windows
    (:class:`repro.core.sessions.SessionConfig`).  The window contract --
    at most ``window`` commands in flight, sequences issued in order --
    holds by construction: sequences are stamped from a monotone counter
    and the pipelined client's ``window`` bounds in-flight commands.

    **Router-aware sessions.** When the cluster is a shard router
    (anything exposing ``session_scope(key)``), a session client keeps
    one session window *per scope* -- commands are stamped
    ``"<session>@<scope>:<seq>"`` from a per-scope monotone counter
    (scopes are ``g<N>`` per group, ``xs`` for cross-shard).  One global
    counter would interleave scopes and leave permanent sequence gaps in
    each group's window; per-scope counters keep every group's cid
    stream dense, so the learner-side window contract holds per group.
    """

    name: str
    cluster: object  # any cluster exposing .propose(cmd, delay=...)
    retry_interval: float | None = None
    max_retries: int = 8
    session: str | None = None
    issued: list[Command] = field(default_factory=list)
    completed: dict[Command, float] = field(default_factory=dict)
    issue_times: dict[Command, float] = field(default_factory=dict)
    retries: dict[Command, int] = field(default_factory=dict)
    _next_seq: int = field(default=0)
    _scope_seqs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.retry_interval is not None and self.retry_interval <= 0:
            raise ValueError("retry_interval must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")

    def make_command(self, op: str, key: str, arg=None) -> Command:
        """A new command, session-stamped when this client has a session."""
        if self.session is not None:
            scope_of = getattr(self.cluster, "session_scope", None)
            if scope_of is not None:
                # Router-aware mode: one dense session window per scope.
                scope = scope_of(key)
                seq = self._scope_seqs.get(scope, 0)
                self._scope_seqs[scope] = seq + 1
                return Command(f"{self.session}@{scope}:{seq}", op, key, arg)
            cid = f"{self.session}:{self._next_seq}"
        else:
            cid = f"{self.name}-{self._next_seq}"
        self._next_seq += 1
        return Command(cid, op, key, arg)

    def issue(self, cmd: Command, delay: float = 0.0) -> Command:
        """Propose *cmd* after *delay* simulated time units."""
        sim = self.cluster.sim
        self.issued.append(cmd)

        def fire() -> None:
            self.issue_times[cmd] = sim.clock
            # Route through the cluster's proposer rotation.
            self.cluster.propose(cmd)
            if self.retry_interval is not None:
                sim.schedule(self.retry_interval, lambda: self._watchdog(cmd))

        sim.schedule(delay, fire)
        return cmd

    def _watchdog(self, cmd: Command) -> None:
        if cmd in self.completed:
            return
        attempts = self.retries.get(cmd, 0)
        if attempts >= self.max_retries:
            return
        self.retries[cmd] = attempts + 1
        self.cluster.propose(cmd)
        backoff = self.retry_interval * (2 ** (attempts + 1))
        self.cluster.sim.schedule(backoff, lambda: self._watchdog(cmd))

    def watch_replica(self, replica) -> None:
        """Record completion when *replica* executes one of our commands.

        Commands can also reach the replica through a snapshot install
        (chunked state transfer to a learner below the truncation floor),
        which fast-forwards the executed sequence without running the
        machine -- so no execute observer fires.  When the replica's
        learner exposes ``on_adopt``, adopted commands are marked complete
        from there; otherwise a pipelined client whose whole window lands
        in a snapshot would wedge.
        """

        def observer(cmd, result) -> None:
            self._note_complete(cmd)

        replica.on_execute(observer)
        self._watch_adoptions(getattr(replica, "learner", None))

    def watch_learner(self, learner) -> None:
        """Record completion when *learner* learns one of our commands.

        For generalized-engine learners (``on_learn`` callbacks receiving
        ``(new_commands, learned)``): completion at learn time, without
        deploying a replica.  Snapshot adoptions bypass ``on_learn`` just
        as they bypass replica execution, so adopted commands complete
        via ``on_adopt`` when the learner exposes it.
        """

        def observer(new_cmds, learned) -> None:
            for cmd in new_cmds:
                self._note_complete(cmd)

        learner.on_learn(observer)
        self._watch_adoptions(learner)

    def _watch_adoptions(self, learner) -> None:
        on_adopt = getattr(learner, "on_adopt", None)
        if on_adopt is None:
            return

        def adopted(frontier, delivered) -> None:
            for cmd in delivered:
                self._note_complete(cmd)

        on_adopt(adopted)

    def _note_complete(self, cmd) -> None:
        if cmd in self.issue_times and cmd not in self.completed:
            self.completed[cmd] = self.cluster.sim.clock

    def latency(self, cmd: Command) -> float | None:
        if cmd not in self.completed or cmd not in self.issue_times:
            return None
        return self.completed[cmd] - self.issue_times[cmd]

    def all_completed(self) -> bool:
        return all(cmd in self.completed for cmd in self.issued)


@dataclass
class PipelinedClient(Client):
    """A closed-loop client that keeps a window of commands in flight.

    ``submit`` enqueues a backlog of commands; the client immediately
    issues up to ``window`` of them and replaces each completed command
    with the next one from the backlog, keeping the pipeline saturated.
    This is the closed-loop load generator for the batching layer: with a
    window larger than the proposer's batch size, batches fill on arrival
    pressure instead of timer flushes, and the generalized engine sees a
    steady multi-command frontier to merge per round trip.

    Watch a replica (``watch_replica``) or a generalized learner
    (``watch_learner``) so completions are observed; otherwise the window
    never refills.
    """

    window: int = 4
    backlog: deque = field(default_factory=deque)
    in_flight: set = field(default_factory=set)
    peak_in_flight: int = field(default=0)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.window < 1:
            raise ValueError("window must be positive")

    def submit(self, cmds, delay: float = 0.0) -> None:
        """Enqueue *cmds* and start pumping after *delay* time units."""
        self.backlog.extend(cmds)
        self.cluster.sim.schedule(delay, self._pump)

    def _pump(self) -> None:
        issued = False
        while self.backlog and len(self.in_flight) < self.window:
            cmd = self.backlog.popleft()
            self.in_flight.add(cmd)
            self.issue(cmd)
            issued = True
        self.peak_in_flight = max(self.peak_in_flight, len(self.in_flight))
        if issued and not self.backlog:
            # Tail flush for batching engines: the last commands of the
            # backlog would otherwise sit in a partial batch until the
            # flush deadline.  The epsilon delay makes it run after the
            # issues above have hopped through their own zero-delay
            # schedules and landed at the proposers; no-op when nothing is
            # buffered or the cluster has no batching layer.
            flush = getattr(self.cluster, "flush", None)
            if flush is not None:
                self.cluster.sim.schedule(1e-6, flush)

    def _note_complete(self, cmd) -> None:
        already = cmd in self.completed
        super()._note_complete(cmd)
        if not already and cmd in self.in_flight:
            self.in_flight.discard(cmd)
            self._pump()

    def all_completed(self) -> bool:
        return not self.backlog and not self.in_flight and super().all_completed()
