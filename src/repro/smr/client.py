"""Clients: issue commands and track completion.

A :class:`Client` proposes commands through a cluster (generalized or
classic) and observes completion via replica execution callbacks, giving
end-to-end request latency on top of the protocol-level propose-to-learn
metric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cstruct.commands import Command


@dataclass
class Client:
    """A closed-loop or open-loop command issuer."""

    name: str
    cluster: object  # any cluster exposing .propose(cmd, delay=...)
    issued: list[Command] = field(default_factory=list)
    completed: dict[Command, float] = field(default_factory=dict)
    issue_times: dict[Command, float] = field(default_factory=dict)

    def issue(self, cmd: Command, delay: float = 0.0) -> Command:
        """Propose *cmd* after *delay* simulated time units."""
        sim = self.cluster.sim
        self.issued.append(cmd)

        def fire() -> None:
            self.issue_times[cmd] = sim.clock
            # Route through the cluster's proposer rotation.
            self.cluster.propose(cmd)

        sim.schedule(delay, fire)
        return cmd

    def watch_replica(self, replica) -> None:
        """Record completion when *replica* executes one of our commands."""

        def observer(cmd, result) -> None:
            if cmd in self.issue_times and cmd not in self.completed:
                self.completed[cmd] = self.cluster.sim.clock

        replica.on_execute(observer)

    def latency(self, cmd: Command) -> float | None:
        if cmd not in self.completed or cmd not in self.issue_times:
            return None
        return self.completed[cmd] - self.issue_times[cmd]

    def all_completed(self) -> bool:
        return all(cmd in self.completed for cmd in self.issued)
