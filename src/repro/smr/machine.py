"""Deterministic state machines and the key-value store application.

Commands are :class:`repro.cstruct.commands.Command` records; the key-value
store interprets ``op``/``key``/``arg``.  Its conflict relation -- reads on
the same key commute, everything else on the same key conflicts, different
keys always commute -- is the canonical generic-broadcast workload the
paper motivates ("operations changing the same piece of data, as a file in
a file system or a row in a database").
"""

from __future__ import annotations

from typing import Any

from repro.cstruct.commands import Command, KeyConflict


class StateMachine:
    """A deterministic state machine: identical command sequences must
    produce identical states on every replica."""

    def apply(self, cmd: Command) -> Any:
        """Execute *cmd* and return its result."""
        raise NotImplementedError

    def snapshot(self) -> Any:
        """A hashable/value-comparable representation of the state."""
        raise NotImplementedError

    def restore(self, state: Any) -> None:
        """Reset to the state captured by :meth:`snapshot`.

        ``restore(None)`` resets to the initial (empty) state.  Required
        for checkpointing and snapshot-based state transfer: a replica
        installing a peer's checkpoint replaces its machine state wholesale
        instead of replaying the full command history.
        """
        raise NotImplementedError


class KVStore(StateMachine):
    """A string-keyed store with ``put``, ``get``, ``inc`` and ``cas`` ops."""

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self.applied: list[Command] = []

    def apply(self, cmd: Command) -> Any:
        self.applied.append(cmd)
        if cmd.op == "put":
            self._data[cmd.key] = cmd.arg
            return cmd.arg
        if cmd.op == "get":
            return self._data.get(cmd.key)
        if cmd.op == "inc":
            amount = cmd.arg if cmd.arg is not None else 1
            self._data[cmd.key] = self._data.get(cmd.key, 0) + amount
            return self._data[cmd.key]
        if cmd.op == "cas":
            expected, new = cmd.arg
            if self._data.get(cmd.key) == expected:
                self._data[cmd.key] = new
                return True
            return False
        raise ValueError(f"unknown operation {cmd.op!r}")

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def snapshot(self) -> tuple:
        return tuple(sorted(self._data.items()))

    def restore(self, state: tuple | None) -> None:
        """Adopt a :meth:`snapshot` (or reset, with ``None``).

        ``applied`` restarts empty: the pre-snapshot history lives in the
        checkpoint, not in this machine's replay log.
        """
        self._data = dict(state) if state is not None else {}
        self.applied = []


def kv_conflict() -> KeyConflict:
    """The key-value store's conflict relation (reads commute per key)."""
    return KeyConflict(read_ops=frozenset({"get"}))
