"""Replicas: state machines driven by learners.

Two replication styles, mirroring the paper's two framings:

* :class:`BroadcastReplica` -- attaches to a generalized learner; the
  single Generalized Consensus instance yields a growing command history
  and the replica applies the delta of every learn event.  Conflicting
  commands are applied in the same order at every replica; commuting
  commands may interleave differently, and by determinism of the state
  machine over conflicts the final states coincide.
* :class:`OrderedReplica` -- attaches to a Classic Paxos learner; one
  consensus instance per command, applied in instance order.
"""

from __future__ import annotations

from typing import Callable

from repro.cstruct.commands import Command
from repro.smr.machine import StateMachine


class BroadcastReplica:
    """A replica fed by a generic-broadcast (generalized) learner.

    A command is executed at most once: duplicate deliveries (message
    duplication, client resubmission, overlapping learn deltas) are dropped
    and ``results`` keeps the result of the *first* execution, so a
    resubmitted non-idempotent command cannot silently change its recorded
    outcome.

    Checkpointing: when the learner supports it (``register_replica``),
    the replica registers itself so the learner can capture
    :meth:`snapshot_state` at its learn frontier and restore via
    :meth:`install_snapshot` -- on crash-recovery from the learner's own
    journalled checkpoint, and on snapshot-based state transfer from a
    peer when this replica lags below the cluster's stable-prefix
    truncation floor.
    """

    def __init__(self, learner, machine: StateMachine) -> None:
        self.learner = learner
        self.machine = machine
        self.executed: list[Command] = []
        self.results: dict[Command, object] = {}
        self._executed_set: set[Command] = set()
        self._observers: list[Callable[[Command, object], None]] = []
        learner.on_learn(self._on_learn)
        register = getattr(learner, "register_replica", None)
        if register is not None:
            register(self)

    def on_execute(self, observer: Callable[[Command, object], None]) -> None:
        self._observers.append(observer)

    def order_signature(self) -> tuple[Command, ...]:
        """The applied command sequence (for cross-replica agreement checks)."""
        return tuple(self.executed)

    def _on_learn(self, new_cmds, learned) -> None:
        for cmd in new_cmds:
            if cmd in self._executed_set:
                continue
            result = self.machine.apply(cmd)
            self.executed.append(cmd)
            self._executed_set.add(cmd)
            self.results[cmd] = result
            for observer in self._observers:
                observer(cmd, result)

    # -- checkpointing ------------------------------------------------------

    def snapshot_state(self):
        """The machine state at the current execution frontier."""
        return self.machine.snapshot()

    def install_snapshot(self, machine_state, executed) -> None:
        """Adopt a checkpoint: machine state plus its executed sequence.

        Compatible learned histories order every conflicting pair
        identically, so adopting a peer checkpoint wholesale preserves the
        replica agreement guarantee: conflicting commands keep one order
        everywhere, commuting commands may interleave differently and the
        states coincide by determinism over conflicts.  With
        ``machine_state`` None the state is rebuilt by deterministic
        replay of *executed* from the initial state.  ``results`` of
        fast-forwarded commands are not reconstructed -- clients that need
        them must watch a replica that executed live.
        """
        executed = list(executed)
        if machine_state is None:
            self.machine.restore(None)
            for cmd in executed:
                self.machine.apply(cmd)
        else:
            self.machine.restore(machine_state)
        self.executed = executed
        self._executed_set = set(executed)
        self.results = {}


class OrderedReplica:
    """A replica fed by a Classic Paxos learner (instance order).

    Deduplicates like :class:`BroadcastReplica`: learners already deliver
    each command once, but a command decided in two instances (assignment
    races, resubmission) must still execute only once with its first result
    preserved.

    Checkpointing: when the learner supports it (``register_replica``),
    the replica registers itself so the learner can capture
    :meth:`snapshot_state` at its delivery frontier and restore via
    :meth:`install_snapshot` -- on crash-recovery from the learner's own
    journalled checkpoint, and on snapshot-based state transfer from a
    peer when this replica lags below the cluster's log truncation
    frontier.
    """

    def __init__(self, learner, machine: StateMachine) -> None:
        self.learner = learner
        self.machine = machine
        self.executed: list[Command] = []
        self.results: dict[Command, object] = {}
        self._executed_set: set[Command] = set()
        self._observers: list[Callable[[Command, object], None]] = []
        learner.on_deliver(self._on_deliver)
        register = getattr(learner, "register_replica", None)
        if register is not None:
            register(self)

    def on_execute(self, observer: Callable[[Command, object], None]) -> None:
        self._observers.append(observer)

    def order_signature(self) -> tuple[Command, ...]:
        """The applied command sequence (for cross-replica agreement checks)."""
        return tuple(self.executed)

    def _on_deliver(self, instance: int, cmd) -> None:
        if cmd in self._executed_set:
            return
        result = self.machine.apply(cmd)
        self.executed.append(cmd)
        self._executed_set.add(cmd)
        self.results[cmd] = result
        for observer in self._observers:
            observer(cmd, result)

    # -- checkpointing ------------------------------------------------------

    def snapshot_state(self):
        """The machine state at the current execution frontier."""
        return self.machine.snapshot()

    def install_snapshot(self, machine_state, executed) -> None:
        """Adopt a checkpoint: machine state plus its executed sequence.

        The agreed total order makes our executed sequence a prefix of any
        peer checkpoint's, so adopting the checkpoint wholesale is a pure
        fast-forward.  With ``machine_state`` None (a checkpoint taken by a
        learner with no attached machine, or a reset) the state is rebuilt
        by deterministic replay of *executed* from the initial state.
        ``results`` of fast-forwarded commands are not reconstructed --
        clients that need them must watch a replica that executed live.
        """
        executed = list(executed)
        if machine_state is None:
            self.machine.restore(None)
            for cmd in executed:
                self.machine.apply(cmd)
        else:
            self.machine.restore(machine_state)
        self.executed = executed
        self._executed_set = set(executed)
        self.results = {}
