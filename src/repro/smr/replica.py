"""Replicas: state machines driven by learners.

Two replication styles, mirroring the paper's two framings:

* :class:`BroadcastReplica` -- attaches to a generalized learner; the
  single Generalized Consensus instance yields a growing command history
  and the replica applies the delta of every learn event.  Conflicting
  commands are applied in the same order at every replica; commuting
  commands may interleave differently, and by determinism of the state
  machine over conflicts the final states coincide.
* :class:`OrderedReplica` -- attaches to a Classic Paxos learner; one
  consensus instance per command, applied in instance order.
"""

from __future__ import annotations

from typing import Callable

from repro.cstruct.commands import Command
from repro.smr.machine import StateMachine


class BroadcastReplica:
    """A replica fed by a generic-broadcast (generalized) learner.

    A command is executed at most once: duplicate deliveries (message
    duplication, client resubmission, overlapping learn deltas) are dropped
    and ``results`` keeps the result of the *first* execution, so a
    resubmitted non-idempotent command cannot silently change its recorded
    outcome.
    """

    def __init__(self, learner, machine: StateMachine) -> None:
        self.learner = learner
        self.machine = machine
        self.executed: list[Command] = []
        self.results: dict[Command, object] = {}
        self._executed_set: set[Command] = set()
        self._observers: list[Callable[[Command, object], None]] = []
        learner.on_learn(self._on_learn)

    def on_execute(self, observer: Callable[[Command, object], None]) -> None:
        self._observers.append(observer)

    def order_signature(self) -> tuple[Command, ...]:
        """The applied command sequence (for cross-replica agreement checks)."""
        return tuple(self.executed)

    def _on_learn(self, new_cmds, learned) -> None:
        for cmd in new_cmds:
            if cmd in self._executed_set:
                continue
            result = self.machine.apply(cmd)
            self.executed.append(cmd)
            self._executed_set.add(cmd)
            self.results[cmd] = result
            for observer in self._observers:
                observer(cmd, result)


class OrderedReplica:
    """A replica fed by a Classic Paxos learner (instance order).

    Deduplicates like :class:`BroadcastReplica`: learners already deliver
    each command once, but a command decided in two instances (assignment
    races, resubmission) must still execute only once with its first result
    preserved.
    """

    def __init__(self, learner, machine: StateMachine) -> None:
        self.learner = learner
        self.machine = machine
        self.executed: list[Command] = []
        self.results: dict[Command, object] = {}
        self._executed_set: set[Command] = set()
        self._observers: list[Callable[[Command, object], None]] = []
        learner.on_deliver(self._on_deliver)

    def on_execute(self, observer: Callable[[Command, object], None]) -> None:
        self._observers.append(observer)

    def order_signature(self) -> tuple[Command, ...]:
        """The applied command sequence (for cross-replica agreement checks)."""
        return tuple(self.executed)

    def _on_deliver(self, instance: int, cmd) -> None:
        if cmd in self._executed_set:
            return
        result = self.machine.apply(cmd)
        self.executed.append(cmd)
        self._executed_set.add(cmd)
        self.results[cmd] = result
        for observer in self._observers:
            observer(cmd, result)
