"""Multicoordinated MultiPaxos: one consensus instance per command.

The paper's application-oriented framing (abstract; Sections 1 and 4.1):
state-machine replication runs a sequence of consensus instances, and
multicoordinated rounds remove the leader from the per-command critical
path.  This module implements that substrate directly:

* one :class:`repro.core.rounds.RoundId` round spans *all* instances; its
  phase 1 is executed once (a ⟨1a⟩ covers every instance and acceptors
  answer with all their per-instance votes, the Section 2.1.2 trick);
* every command is assigned to an instance and forwarded through a
  coordinator quorum; acceptors accept a value for an instance only on
  identical phase "2a" values from a full coordinator quorum;
* proposers may pick a per-command coordinator quorum and acceptor quorum
  (the Section 4.1 load-balancing scheme) -- with instance-granular
  consensus the per-command quorum choice genuinely bounds each acceptor's
  load, unlike the cumulative c-structs of the single-instance engine;
* concurrent commands can race for an instance ("collision", Section 4.2):
  coordinators exchange their phase "2a" messages and converge on one
  assignment per instance (the lowest-indexed coordinator's choice wins,
  a deterministic variant of the paper's collision handling); displaced
  commands are requeued to the next free instance, and any residual stuck
  instance is resolved by the leader starting a higher single-coordinated
  round;
* learners deliver decided values in instance order, so replicas apply a
  total order.

Leader changes (round changes) re-run phase 1 for all instances; the new
round's coordinators re-propose every value that may have been chosen and
close gaps with no-ops, exactly as the Classic Paxos baseline does.

Batching and pipelining
-----------------------

Passing a :class:`BatchingConfig` to :func:`build_smr` turns on the two
classic Multi-Paxos throughput levers:

* **Command batching** -- proposers pack client commands into a
  :class:`Batch`, the opaque value decided by one consensus instance.  A
  batch is flushed when it reaches ``max_batch`` commands (size trigger) or
  ``flush_interval`` time units after its first command arrived (time
  trigger), so a partial final batch always ships.  The buffer is
  journalled to the proposer's stable storage: a proposer that crashes
  with commands buffered re-ships them on recovery (buffered commands
  are invisible to the coordinators' stuck detection, so nothing else
  could re-drive them).  Coordinators,
  acceptors and the collision machinery treat batches as ordinary values;
  learners unpack them and deliver the contained commands in instance
  order, then batch order, so replicas still apply one total order.
* **Instance pipelining** -- each coordinator keeps at most
  ``pipeline_depth`` self-assigned instances in flight (proposed but
  undecided).  Further batches wait in the pending queue and are drained
  as decisions arrive, bounding speculative instance growth under bursts
  while keeping the pipe full.

Knobs (:class:`BatchingConfig`): ``max_batch`` (commands per batch, size
trigger), ``flush_interval`` (virtual-time flush deadline for partial
batches), ``pipeline_depth`` (max in-flight instances per coordinator).
With ``batching=None`` (the default) every command gets its own instance
immediately and the pipeline is unbounded -- the pre-batching behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable

from repro.core.liveness import FailureDetector, Heartbeat, LivenessConfig
from repro.core.quorums import QuorumSystem
from repro.core.rounds import ZERO, RoundId, RoundSchedule
from repro.core.topology import Topology
from repro.sim.process import Process
from repro.sim.scheduler import Simulation

NOOP = "__noop__"


@dataclass(frozen=True)
class Batch:
    """An ordered pack of client commands decided by one instance."""

    cmds: tuple[Hashable, ...]

    def __len__(self) -> int:
        return len(self.cmds)

    def __iter__(self):
        return iter(self.cmds)


@dataclass
class BatchingConfig:
    """Batching/pipelining knobs (see the module docstring).

    Attributes:
        max_batch: Commands per batch; reaching it flushes immediately.
        flush_interval: Virtual-time deadline after the first buffered
            command at which a partial batch is flushed anyway.
        pipeline_depth: Maximum self-assigned in-flight (undecided)
            instances per coordinator.
    """

    max_batch: int = 8
    flush_interval: float = 2.0
    pipeline_depth: int = 4

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be at least 1")


# -- messages -----------------------------------------------------------------


@dataclass(frozen=True)
class IPropose:
    cmd: Hashable
    coord_quorum: frozenset[int] | None = None
    acceptor_quorum: frozenset[str] | None = None


@dataclass(frozen=True)
class I1a:
    rnd: RoundId


@dataclass(frozen=True)
class I1b:
    rnd: RoundId
    acceptor: str
    votes: tuple[tuple[int, RoundId, Hashable], ...]  # (instance, vrnd, vval)


@dataclass(frozen=True)
class I2a:
    rnd: RoundId
    instance: int
    val: Hashable
    coord: int


@dataclass(frozen=True)
class I2b:
    rnd: RoundId
    instance: int
    val: Hashable
    acceptor: str


@dataclass(frozen=True)
class INack:
    rnd: RoundId
    higher: RoundId


@dataclass
class InstancesConfig:
    topology: Topology
    quorums: QuorumSystem
    schedule: RoundSchedule
    liveness: LivenessConfig | None = None
    batching: BatchingConfig | None = None


class SMRProposer(Process):
    """Proposes commands, optionally balancing load across quorums.

    With batching enabled the proposer is the *batcher*: commands are
    buffered and shipped as one :class:`Batch` value when the buffer
    reaches ``max_batch`` or ``flush_interval`` after the first buffered
    command (whichever comes first), amortizing the per-instance protocol
    cost over many commands.
    """

    def __init__(self, pid: str, sim: Simulation, config: InstancesConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.balance_load = False
        self.batches_sent = 0
        self._buffer: list[Hashable] = []
        self._flush_timer = None

    def propose(self, cmd: Hashable) -> None:
        self.metrics.record_propose(cmd, self.now)
        batching = self.config.batching
        if batching is None:
            self._forward(cmd)
            return
        self._buffer.append(cmd)
        # Journal the buffer: unlike the unbatched engine, buffered commands
        # have not reached any coordinator yet, so a proposer crash would
        # otherwise lose them beyond the reach of the liveness machinery.
        self.storage.write("batch_buffer", tuple(self._buffer))
        if len(self._buffer) >= batching.max_batch:
            self.flush()
        elif self._flush_timer is None:
            self._flush_timer = self.set_timer(batching.flush_interval, self.flush)

    def flush(self) -> None:
        """Ship the buffered commands as one batch (partial batches too)."""
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        if not self._buffer:
            return
        batch = Batch(tuple(self._buffer))
        self._buffer.clear()
        self.storage.write("batch_buffer", ())
        self.batches_sent += 1
        self._forward(batch)

    def _forward(self, value: Hashable) -> None:
        coord_quorum = None
        acceptor_quorum = None
        if self.balance_load:
            rng = self.sim.rng
            coords = list(self.config.schedule.coordinators)
            coord_quorum = frozenset(rng.sample(coords, len(coords) // 2 + 1))
            accs = list(self.config.topology.acceptors)
            acceptor_quorum = frozenset(
                rng.sample(accs, self.config.quorums.classic_quorum_size)
            )
        msg = IPropose(value, coord_quorum, acceptor_quorum)
        # Every coordinator hears the proposal (the leader needs it for
        # stuck detection); only the chosen quorum forwards it, so the
        # per-command forwarding load stays balanced (Section 4.1).
        self.broadcast(self.config.topology.coordinators, msg)

    def on_crash(self) -> None:
        self._buffer = []
        self._flush_timer = None

    def on_recover(self) -> None:
        buffered = self.storage.read("batch_buffer", ())
        if buffered:
            self._buffer = list(buffered)
            self.flush()


class SMRCoordinator(Process):
    """A coordinator of the multicoordinated replication group."""

    def __init__(
        self, pid: str, sim: Simulation, config: InstancesConfig, index: int
    ) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.index = index
        self.crnd: RoundId = ZERO
        self.phase1_done = False
        self.next_instance = 0
        self.pending: list[IPropose] = []
        self.assigned: dict[int, IPropose] = {}  # instance -> proposal in flight
        self.decided: dict[int, Hashable] = {}
        self.highest_seen: RoundId = ZERO
        self.reassignments = 0
        self._sent: dict[int, Hashable] = {}  # instance -> value last sent in 2a
        self._owners: dict[int, int] = {}  # instance -> lowest coord index seen
        # Mirror sets for O(1) membership on the per-proposal hot paths
        # (the dict .values() scans made proposal handling O(n^2) overall).
        self._pending_cmds: set[Hashable] = set()  # {p.cmd for p in pending}
        self._assigned_cmds: set[Hashable] = set()  # {p.cmd for p in assigned.values()}
        self._sent_values: set[Hashable] = set()  # set(self._sent.values())
        self._decided_values: set[Hashable] = set()  # set(self.decided.values())
        self._observed: dict[Hashable, float] = {}  # every proposed command
        self._served: set[Hashable] = set()  # commands seen decided
        self._hole_seen: dict[int, float] = {}  # undecided gaps, first seen
        self._p1b: dict[RoundId, dict[str, I1b]] = {}
        self._p2b: dict[tuple[int, RoundId], dict[str, Hashable]] = {}
        self._fd: FailureDetector | None = None
        self._last_round_change = 0.0
        if config.liveness is not None:
            peers = list(enumerate(config.topology.coordinators))
            self._fd = FailureDetector(
                self, index, peers, config.liveness, on_check=self._progress_check
            )
            self._fd.start()

    # -- round management --------------------------------------------------

    def start_round(self, rnd: RoundId) -> None:
        if not self.config.schedule.is_coordinator_of(self.index, rnd):
            raise ValueError(f"coordinator {self.index} does not coordinate {rnd}")
        if rnd <= self.crnd:
            raise ValueError(f"round {rnd} is not above {self.crnd}")
        self._adopt(rnd)
        self._last_round_change = self.now
        self.broadcast(self.config.topology.acceptors, I1a(rnd))

    def _adopt(self, rnd: RoundId) -> None:
        self.crnd = rnd
        self.phase1_done = False
        # In-flight commands of the previous round are re-driven here.
        for proposal in self.assigned.values():
            if (
                proposal.cmd not in self._decided_values
                and proposal.cmd not in self._pending_cmds
            ):
                self.pending.append(proposal)
                self._pending_cmds.add(proposal.cmd)
        self.assigned = {}
        self._assigned_cmds = set()
        self._sent = {}
        self._sent_values = set()
        self._owners = {}
        self.highest_seen = max(self.highest_seen, rnd)

    def is_leader(self) -> bool:
        return self._fd.is_leader() if self._fd is not None else self.index == 0

    # -- phase 1 ----------------------------------------------------------------

    def on_i1b(self, msg: I1b, src: Hashable) -> None:
        rnd = msg.rnd
        self.highest_seen = max(self.highest_seen, rnd)
        if not self.config.schedule.is_coordinator_of(self.index, rnd):
            return
        if rnd > self.crnd:
            self._adopt(rnd)
        if rnd != self.crnd or self.phase1_done:
            return
        self._p1b.setdefault(rnd, {})[msg.acceptor] = msg
        replies = self._p1b[rnd]
        if len(replies) < self.config.quorums.classic_quorum_size:
            return
        self._finish_phase1(replies)

    def _finish_phase1(self, replies: dict[str, I1b]) -> None:
        """Re-send possibly chosen values; close gaps; resume service.

        Per instance this applies the Fast Paxos picking rule (Section
        2.2): a value must be re-proposed iff, at the highest round ``k``
        reported for the instance, it was reported by at least
        ``|Q| + q_k - n`` acceptors (it may have been chosen).  A
        multicoordinated round can leave *different* values accepted by
        different (non-quorum) acceptor subsets after an instance race, so
        the naive "value of the highest vrnd" rule would be unsafe here.
        """
        self.phase1_done = True
        votes_by_instance: dict[int, list[tuple[RoundId, Hashable]]] = {}
        for reply in replies.values():
            for instance, vrnd, vval in reply.votes:
                votes_by_instance.setdefault(instance, []).append((vrnd, vval))
        min_inter = (
            len(replies) + self.config.quorums.classic_quorum_size
            - self.config.quorums.n
        )
        # Cover every instance this coordinator knows about -- reported
        # votes, decided instances and gossip-known claims alike -- so that
        # undecided holes are closed with no-ops (nothing can be chosen at
        # a lower round for an instance no phase-1 replier voted in, since
        # the repliers' quorum intersects every quorum of lower rounds).
        top = max(
            [self.next_instance - 1, *votes_by_instance, *self.decided],
            default=-1,
        )
        for instance in range(top + 1):
            if instance in self.decided:
                continue
            value = self._pick_for_instance(
                votes_by_instance.get(instance, []), min_inter
            )
            self._send_2a(instance, value, None)
        self.next_instance = max(self.next_instance, top + 1)
        self._drain()

    @staticmethod
    def _pick_for_instance(
        votes: list[tuple[RoundId, Hashable]], min_inter: int
    ) -> Hashable:
        if not votes:
            return NOOP
        k = max(vrnd for vrnd, _ in votes)
        counts: dict[Hashable, int] = {}
        for vrnd, vval in votes:
            if vrnd == k:
                counts[vval] = counts.get(vval, 0) + 1
        candidates = [value for value, count in counts.items() if count >= min_inter]
        if candidates:
            return candidates[0]  # at most one by the quorum requirement
        # Nothing provably chosen: free to pick; prefer a reported value so
        # the raced command still gets decided.
        return max(counts.items(), key=lambda kv: (kv[1], repr(kv[0])))[0]

    # -- proposals ------------------------------------------------------------------

    def on_ipropose(self, msg: IPropose, src: Hashable) -> None:
        # Track every command for the leader's stuck detection, even when
        # this coordinator is not in the command's quorum.
        if msg.cmd not in self._observed and msg.cmd not in self._served:
            self._observed[msg.cmd] = self.now
        if msg.coord_quorum is not None and self.index not in msg.coord_quorum:
            return
        if (
            msg.cmd in self._pending_cmds
            or msg.cmd in self._assigned_cmds
            or msg.cmd in self._decided_values
        ):
            return
        self.pending.append(msg)
        self._pending_cmds.add(msg.cmd)
        self._drain()

    def _drain(self) -> None:
        if not self.phase1_done:
            return
        if not self.config.schedule.is_coordinator_of(self.index, self.crnd):
            return
        batching = self.config.batching
        window = batching.pipeline_depth if batching is not None else None
        while self.pending:
            if window is not None and len(self.assigned) >= window:
                return  # pipeline full; refilled on the next decision
            proposal = self.pending.pop(0)
            self._pending_cmds.discard(proposal.cmd)
            already_driving = (
                proposal.cmd in self._decided_values
                or proposal.cmd in self._sent_values
                or proposal.cmd in self._assigned_cmds
            )
            if already_driving:
                continue
            instance = self.next_instance
            self.next_instance += 1
            self._send_2a(instance, proposal.cmd, proposal)

    def _send_2a(self, instance: int, value: Hashable, proposal: IPropose | None) -> None:
        if proposal is not None:
            self.assigned[instance] = proposal
            self._assigned_cmds.add(proposal.cmd)
        self._sent[instance] = value
        self._sent_values.add(value)
        self._owners.setdefault(instance, self.index)
        self.metrics.count_command_handled(self.pid)
        targets = self.config.topology.acceptors
        if proposal is not None and proposal.acceptor_quorum is not None:
            targets = tuple(sorted(proposal.acceptor_quorum))
        self.broadcast(targets, I2a(self.crnd, instance, value, self.index))
        # Share the assignment with the round's other coordinators so
        # concurrent assignments converge (see on_i2a).
        peers = [
            pid
            for pid in self.config.topology.coordinator_pids(
                self.config.schedule.coordinators_of(self.crnd)
            )
            if pid != self.pid
        ]
        self.broadcast(peers, I2a(self.crnd, instance, value, self.index))

    # -- assignment convergence ------------------------------------------------------

    def on_i2a(self, msg: I2a, src: Hashable) -> None:
        """Endorse a peer coordinator's assignment for a fresh instance.

        Safety constraint (Section 3.1): a coordinator sends at most *one*
        value per instance per round, or two different values could each
        gather a full coordinator quorum and be accepted by different
        acceptor quorums.  So a peer's assignment is endorsed only for
        instances this coordinator has not claimed yet; conflicting claims
        are a genuine collision -- the instance stays undecided and the
        leader's recovery round (phase 1 + the picking rule) resolves it.
        """
        self.highest_seen = max(self.highest_seen, msg.rnd)
        if msg.rnd != self.crnd or not self.phase1_done:
            return
        if not self.config.schedule.is_coordinator_of(self.index, self.crnd):
            return
        instance = msg.instance
        self.next_instance = max(self.next_instance, instance + 1)
        if instance in self._sent:
            return  # our value for this instance is final within the round
        # Endorse: forward the same value so the coordinator quorum agrees.
        self._owners[instance] = min(self._owners.get(instance, msg.coord), msg.coord)
        self._sent[instance] = msg.val
        self._sent_values.add(msg.val)
        self.broadcast(
            self.config.topology.acceptors,
            I2a(self.crnd, instance, msg.val, self.index),
        )
        # Drop the command from our queue if a peer is already driving it.
        if msg.val in self._pending_cmds:
            self.pending = [p for p in self.pending if p.cmd != msg.val]
            self._pending_cmds.discard(msg.val)

    # -- decision monitoring and instance-race reassignment (Section 4.2) --------------

    def on_i2b(self, msg: I2b, src: Hashable) -> None:
        self.highest_seen = max(self.highest_seen, msg.rnd)
        key = (msg.instance, msg.rnd)
        votes = self._p2b.setdefault(key, {})
        votes[msg.acceptor] = msg.val
        count = sum(1 for v in votes.values() if v == msg.val)
        if count < self.config.quorums.classic_quorum_size:
            return
        if msg.instance not in self.decided:
            self.decided[msg.instance] = msg.val
            self._decided_values.add(msg.val)
        self._served.add(msg.val)
        self._observed.pop(msg.val, None)
        self.next_instance = max(self.next_instance, msg.instance + 1)
        proposal = self.assigned.pop(msg.instance, None)
        if proposal is not None:
            self._assigned_cmds.discard(proposal.cmd)
        if proposal is not None and proposal.cmd != msg.val:
            # We lost the race for this instance; requeue our command.
            self.reassignments += 1
            if (
                proposal.cmd not in self._decided_values
                and proposal.cmd not in self._pending_cmds
            ):
                self.pending.append(proposal)
                self._pending_cmds.add(proposal.cmd)
                self._drain()
        if self.config.batching is not None:
            # A decision freed pipeline capacity; refill the window.
            self._drain()

    def on_inack(self, msg: INack, src: Hashable) -> None:
        self.highest_seen = max(self.highest_seen, msg.higher)

    def on_heartbeat(self, msg: Heartbeat, src: Hashable) -> None:
        if self._fd is not None:
            self._fd.on_heartbeat(msg)

    # -- liveness -----------------------------------------------------------------------

    def _progress_check(self) -> None:
        liveness = self.config.liveness
        if liveness is None or not self.is_leader():
            return
        if self.now - self._last_round_change < liveness.stuck_timeout:
            return
        active = self.config.schedule.is_coordinator_of(self.index, self.crnd)
        aged = [
            cmd
            for cmd, since in self._observed.items()
            if self.now - since > liveness.stuck_timeout
        ]
        top_decided = max(self.decided, default=-1)
        holes = {j for j in range(top_decided) if j not in self.decided}
        self._hole_seen = {
            j: self._hole_seen.get(j, self.now) for j in holes
        }
        aged_holes = [
            j
            for j, since in self._hole_seen.items()
            if self.now - since > liveness.stuck_timeout
        ]
        # In-flight commands and momentary gaps are normal; only *aged*
        # unserved commands or aged delivery holes indicate a stuck round.
        stuck = bool(aged) or bool(aged_holes)
        if active and not self.phase1_done and self.crnd > ZERO:
            stuck = True  # phase 1 never completed; retry with a new round
        if not stuck and active and self.phase1_done:
            return
        if not stuck and not active:
            return
        base = max(self.highest_seen, self.crnd)
        rnd = RoundId(
            mcount=base.mcount,
            count=base.count + 1,
            coord=self.index,
            rtype=liveness.recovery_rtype,
        )
        # _adopt (inside start_round) requeues our in-flight commands; the
        # leader additionally takes over every observed-but-unserved
        # command, covering commands stuck at other coordinators.
        self.start_round(rnd)
        for cmd in aged:
            if cmd not in self._pending_cmds:
                self.pending.append(IPropose(cmd))
                self._pending_cmds.add(cmd)

    # -- crash-recovery -----------------------------------------------------------------

    def on_crash(self) -> None:
        self.crnd = ZERO
        self.phase1_done = False
        self.pending = []
        self.assigned = {}
        self.decided = {}
        self._sent = {}
        self._owners = {}
        self._pending_cmds = set()
        self._assigned_cmds = set()
        self._sent_values = set()
        self._decided_values = set()
        self._observed = {}
        self._served = set()
        self._hole_seen = {}
        self._p1b = {}
        self._p2b = {}

    def on_recover(self) -> None:
        if self._fd is not None:
            self._fd.start()


class SMRAcceptor(Process):
    """Per-instance votes under one (global) round number."""

    def __init__(self, pid: str, sim: Simulation, config: InstancesConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.rnd: RoundId = ZERO
        self.votes: dict[int, tuple[RoundId, Hashable]] = {}
        self.commands_accepted = 0
        self.collisions_detected = 0
        self._p2a: dict[tuple[int, RoundId], dict[int, Hashable]] = {}
        self._collided: set[tuple[int, RoundId]] = set()

    def on_i1a(self, msg: I1a, src: Hashable) -> None:
        if msg.rnd <= self.rnd:
            if msg.rnd < self.rnd:
                self.send(src, INack(msg.rnd, self.rnd))
            return
        self.rnd = msg.rnd
        self.storage.write("rnd", msg.rnd)
        votes = tuple(
            (instance, vrnd, vval)
            for instance, (vrnd, vval) in sorted(self.votes.items())
        )
        coords = self.config.topology.coordinator_pids(
            self.config.schedule.coordinators_of(msg.rnd)
        )
        self.broadcast(coords, I1b(msg.rnd, self.pid, votes))

    def on_i2a(self, msg: I2a, src: Hashable) -> None:
        if msg.rnd < self.rnd:
            self.send(src, INack(msg.rnd, self.rnd))
            return
        key = (msg.instance, msg.rnd)
        buffer = self._p2a.setdefault(key, {})
        buffer[msg.coord] = msg.val
        values = {v for v in buffer.values()}
        if len(values) > 1 and key not in self._collided:
            # Instance race: different coordinators forwarded different
            # commands.  Nothing is accepted for the losing assignments;
            # the coordinators reassign via the 2b stream (Section 4.2).
            self._collided.add(key)
            self.collisions_detected += 1
        senders = frozenset(buffer)
        for quorum in self.config.schedule.coord_quorums(msg.rnd):
            if not quorum <= senders:
                continue
            quorum_values = {buffer[c] for c in quorum}
            if len(quorum_values) != 1:
                continue
            self._accept(msg.rnd, msg.instance, next(iter(quorum_values)))
            return

    def _accept(self, rnd: RoundId, instance: int, value: Hashable) -> None:
        if rnd < self.rnd:
            return
        current = self.votes.get(instance)
        if current is not None and current[0] >= rnd:
            return
        self.rnd = max(self.rnd, rnd)
        self.votes[instance] = (rnd, value)
        self.commands_accepted += 1
        self.storage.write_many({f"vote:{instance}": (rnd, value)})
        vote = I2b(rnd, instance, value, self.pid)
        self.broadcast(self.config.topology.learners, vote)
        coords = self.config.topology.coordinator_pids(
            self.config.schedule.coordinators_of(rnd)
        )
        self.broadcast(coords, vote)

    def on_crash(self) -> None:
        self.rnd = ZERO
        self.votes = {}
        self._p2a = {}
        self._collided = set()

    def on_recover(self) -> None:
        self.rnd = self.storage.read("rnd", ZERO)
        for key in list(self.storage.keys()):
            if key.startswith("vote:"):
                instance = int(key.split(":", 1)[1])
                self.votes[instance] = self.storage.read(key)


class SMRLearner(Process):
    """Learns per-instance decisions; delivers them in instance order.

    Batched values are unpacked here: replicas observe individual commands
    in instance order, then intra-batch order, so the delivered sequence is
    the same total order whether or not batching is enabled upstream.
    """

    def __init__(self, pid: str, sim: Simulation, config: InstancesConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.decided: dict[int, Hashable] = {}
        self.delivered: list[Hashable] = []
        self._delivered_set: set[Hashable] = set()
        self._next_delivery = 0
        self._votes: dict[tuple[int, RoundId], dict[str, Hashable]] = {}
        self._callbacks: list[Callable[[int, Hashable], None]] = []

    def on_deliver(self, callback: Callable[[int, Hashable], None]) -> None:
        self._callbacks.append(callback)

    def has_delivered(self, cmd: Hashable) -> bool:
        """O(1) membership test on the delivered sequence."""
        return cmd in self._delivered_set

    def on_i2b(self, msg: I2b, src: Hashable) -> None:
        votes = self._votes.setdefault((msg.instance, msg.rnd), {})
        votes[msg.acceptor] = msg.val
        count = sum(1 for v in votes.values() if v == msg.val)
        if count < self.config.quorums.classic_quorum_size:
            return
        existing = self.decided.get(msg.instance)
        if existing is not None:
            if existing != msg.val:
                raise AssertionError(
                    f"consistency violation in instance {msg.instance}: "
                    f"{existing!r} vs {msg.val!r}"
                )
            return
        self.decided[msg.instance] = msg.val
        if isinstance(msg.val, Batch):
            for cmd in msg.val.cmds:
                self.metrics.record_learn(cmd, self.pid, self.now)
        elif msg.val != NOOP:
            self.metrics.record_learn(msg.val, self.pid, self.now)
        self._deliver_ready()

    def _deliver_ready(self) -> None:
        while self._next_delivery in self.decided:
            instance = self._next_delivery
            value = self.decided[instance]
            self._next_delivery += 1
            if value == NOOP:
                continue
            cmds = value.cmds if isinstance(value, Batch) else (value,)
            for cmd in cmds:
                if cmd in self._delivered_set:
                    # At-most-once delivery: assignment races may decide the
                    # same command in two instances; later copies are no-ops.
                    continue
                self.delivered.append(cmd)
                self._delivered_set.add(cmd)
                for callback in self._callbacks:
                    callback(instance, cmd)


@dataclass
class SMRCluster:
    """A deployed multicoordinated replication group."""

    sim: Simulation
    config: InstancesConfig
    proposers: list[SMRProposer]
    coordinators: list[SMRCoordinator]
    acceptors: list[SMRAcceptor]
    learners: list[SMRLearner]
    _proposal_index: int = field(default=0)

    def propose(self, cmd: Hashable, delay: float = 0.0, proposer: int | None = None) -> None:
        if proposer is None:
            proposer = self._proposal_index % len(self.proposers)
            self._proposal_index += 1
        agent = self.proposers[proposer]
        self.sim.schedule(delay, lambda: agent.propose(cmd))

    def start_round(self, rnd: RoundId, coordinator: int | None = None, delay: float = 0.0) -> None:
        index = rnd.coord if coordinator is None else coordinator
        agent = self.coordinators[index]
        self.sim.schedule(delay, lambda: agent.start_round(rnd))

    def set_load_balancing(self, enabled: bool) -> None:
        for proposer in self.proposers:
            proposer.balance_load = enabled

    def flush(self) -> None:
        """Force every proposer to ship its partial batch now."""
        for proposer in self.proposers:
            proposer.flush()

    def everyone_delivered(self, cmds) -> bool:
        cmds = list(cmds)
        return all(
            all(learner.has_delivered(cmd) for cmd in cmds)
            for learner in self.learners
        )

    def run_until_delivered(self, cmds, timeout: float = 5_000.0) -> bool:
        cmds = list(cmds)
        return self.sim.run_until(lambda: self.everyone_delivered(cmds), timeout=timeout)


def build_smr(
    sim: Simulation,
    n_proposers: int = 2,
    n_coordinators: int = 3,
    n_acceptors: int = 3,
    n_learners: int = 1,
    schedule: RoundSchedule | None = None,
    liveness: LivenessConfig | None = None,
    f: int | None = None,
    batching: BatchingConfig | None = None,
) -> SMRCluster:
    """Deploy a multicoordinated MultiPaxos replication group on *sim*."""
    topology = Topology.build(n_proposers, n_coordinators, n_acceptors, n_learners)
    quorums = QuorumSystem(topology.acceptors, f=f)
    if schedule is None:
        schedule = RoundSchedule(range(n_coordinators), recovery_rtype=1)
    config = InstancesConfig(
        topology=topology,
        quorums=quorums,
        schedule=schedule,
        liveness=liveness,
        batching=batching,
    )
    return SMRCluster(
        sim=sim,
        config=config,
        proposers=[SMRProposer(pid, sim, config) for pid in topology.proposers],
        coordinators=[
            SMRCoordinator(pid, sim, config, index)
            for index, pid in enumerate(topology.coordinators)
        ],
        acceptors=[SMRAcceptor(pid, sim, config) for pid in topology.acceptors],
        learners=[SMRLearner(pid, sim, config) for pid in topology.learners],
    )
