"""Multicoordinated MultiPaxos: one consensus instance per command.

The paper's application-oriented framing (abstract; Sections 1 and 4.1):
state-machine replication runs a sequence of consensus instances, and
multicoordinated rounds remove the leader from the per-command critical
path.  This module implements that substrate directly:

* one :class:`repro.core.rounds.RoundId` round spans *all* instances; its
  phase 1 is executed once (a ⟨1a⟩ covers every instance and acceptors
  answer with all their per-instance votes, the Section 2.1.2 trick);
* every command is assigned to an instance and forwarded through a
  coordinator quorum; acceptors accept a value for an instance only on
  identical phase "2a" values from a full coordinator quorum;
* proposers may pick a per-command coordinator quorum and acceptor quorum
  (the Section 4.1 load-balancing scheme) -- with instance-granular
  consensus the per-command quorum choice genuinely bounds each acceptor's
  load, unlike the cumulative c-structs of the single-instance engine;
* concurrent commands can race for an instance ("collision", Section 4.2):
  coordinators exchange their phase "2a" messages and converge on one
  assignment per instance (the lowest-indexed coordinator's choice wins,
  a deterministic variant of the paper's collision handling); displaced
  commands are requeued to the next free instance, and any residual stuck
  instance is resolved by the leader starting a higher single-coordinated
  round;
* learners deliver decided values in instance order, so replicas apply a
  total order.

Leader changes (round changes) re-run phase 1 for all instances; the new
round's coordinators re-propose every value that may have been chosen and
close gaps with no-ops, exactly as the Classic Paxos baseline does.

Batching and pipelining
-----------------------

Passing a :class:`BatchingConfig` to :func:`build_smr` turns on the two
classic Multi-Paxos throughput levers:

* **Command batching** -- proposers pack client commands into a
  :class:`Batch`, the opaque value decided by one consensus instance.  A
  batch is flushed when it reaches ``max_batch`` commands (size trigger) or
  ``flush_interval`` time units after its first command arrived (time
  trigger), so a partial final batch always ships.  The buffer is
  journalled to the proposer's stable storage: a proposer that crashes
  with commands buffered re-ships them on recovery (buffered commands
  are invisible to the coordinators' stuck detection, so nothing else
  could re-drive them).  Coordinators,
  acceptors and the collision machinery treat batches as ordinary values;
  learners unpack them and deliver the contained commands in instance
  order, then batch order, so replicas still apply one total order.
* **Instance pipelining** -- each coordinator keeps at most
  ``pipeline_depth`` self-assigned instances in flight (proposed but
  undecided).  Further batches wait in the pending queue and are drained
  as decisions arrive, bounding speculative instance growth under bursts
  while keeping the pipe full.

Knobs (:class:`BatchingConfig`): ``max_batch`` (commands per batch, size
trigger), ``flush_interval`` (virtual-time flush deadline for partial
batches), ``pipeline_depth`` (max in-flight instances per coordinator).
With ``batching=None`` (the default) every command gets its own instance
immediately and the pipeline is unbounded -- the pre-batching behaviour.

Reliability under message loss
------------------------------

The paper's model is fair-lossy links plus retransmission: a message sent
infinitely often is delivered infinitely often, so every protocol message
must have a re-driver.  Passing a :class:`RetransmitConfig` to
:func:`build_smr` closes every end-to-end path:

* **Proposer retransmission** -- every value shipped (a command or a
  :class:`Batch`) stays in an *unacked* buffer, journalled to stable
  storage, and is re-broadcast as a fresh ``IPropose`` on an exponential
  backoff timer.  Learners confirm delivery with ``IAck``; a value is
  retired only when *every* learner has acked it, so retransmission also
  drives stragglers.  Crash-recovery re-ships the journalled buffer.
* **Decision re-announcement** -- a coordinator receiving a retransmitted
  ``IPropose`` for an already-decided value re-broadcasts the decision
  (``IDecided``) to the learners instead of re-driving consensus; learners
  re-ack duplicates, so the retry loop terminates once every link has let
  one copy through.
* **Coordinator gossip** -- coordinators periodically exchange their
  observed-but-unserved command sets and undecided holes (``IGossip``).  A
  command stranded at a non-leader coordinator reaches the leader's stuck
  detection; a hole known decided by a peer is answered with ``IDecided``.
  The same tick re-broadcasts the coordinator's undecided phase "2a"
  assignments (same value, same round -- safe) so a 2a or peer-endorsement
  lost on some link is eventually re-offered.
* **Learner catch-up** -- each learner tracks its contiguous delivery
  frontier; gaps below the highest decided instance are re-requested
  (``ICatchUp``) from the acceptors, which answer from their journalled
  votes with a fresh ``I2b``, and from peer learners, which answer known
  decisions directly with ``IDecided``.
* **Crash-recovery hardening** -- a coordinator journals its observed
  command set; recovery reloads it, so proposals seen only by a crashed
  coordinator are re-driven instead of silently lost.

Knobs (:class:`RetransmitConfig`): ``retry_interval``/``backoff``/
``max_interval`` (proposer backoff schedule), ``gossip_interval``
(coordinator gossip + 2a re-announce period), ``catchup_interval``
(learner gap-poll period), ``max_resend`` (per-message payload bound).
With ``retransmit=None`` (the default) the engine behaves exactly as
before: live on reliable networks, reliant on round changes under loss.

Checkpointing and log truncation
--------------------------------

The paper's protocols (and the engine above) keep the full decided
history: acceptor votes, coordinator decision maps and learner logs grow
with every command ever run.  Passing a :class:`CheckpointConfig` to
:func:`build_smr` bounds all of it by a sliding window:

* **Snapshots at the delivery frontier** -- each learner, every
  ``interval`` delivered instances (or ``interval_bytes`` of decided
  payload), captures its replica's :meth:`StateMachine.snapshot` together
  with the delivered command sequence, journals the checkpoint in its
  stable storage (one overwritten key: checkpoints compact, they do not
  accumulate), and advertises the snapshot frontier to every coordinator,
  acceptor and peer learner (``ICheckpoint``, re-advertised periodically
  so a lost advertisement only delays garbage collection).
* **Collective safe frontier** -- every process folds the advertised
  frontiers into one GC bound: with ``gc_quorum=None`` the minimum over
  *all* learners (nothing is dropped that any learner still lacks); with
  ``gc_quorum=k`` the k-th highest frontier -- at least ``k`` learners
  hold a durable checkpoint at or above the bound, so a laggard below it
  recovers by snapshot install instead of log replay, and a crashed
  learner cannot pin the cluster's memory forever.
* **Garbage collection below the frontier** -- acceptors drop in-memory
  votes and truncate their vote journal
  (:meth:`StableStorage.truncate_below`, durable floor included);
  coordinators retire ``decided``/``_sent``/``assigned``/vote buffers and
  the per-value dedup indexes; learners truncate their decided log below
  their own checkpoint; proposers retire unacked values once the
  collective frontier passes the value's decided instance (reported in
  the learners' acks) -- past that point every policy-quorum checkpoint
  contains the value, so state transfer, not retransmission, covers any
  remaining laggard.
* **Two-tier catch-up** -- a gap *above* the truncation floor is answered
  from the log exactly as before (acceptor re-``I2b``, peer ``IDecided``).
  A request *below* the floor is answered with ``ITruncated`` (acceptors:
  the log horizon moved) or ``ISnapshotOffer`` (peer learners: install my
  checkpoint instead); the laggard then pulls the checkpoint in
  ``chunk_size``-command chunks (``ISnapshotRequest``/``ISnapshotChunk``),
  re-requesting only missing chunks on its catch-up tick (resumable under
  loss), installs it -- machine state, executed sequence, delivery
  frontier -- and resumes ordinary log replay above the frontier.
* **Crash-recovery from the local checkpoint** -- a recovering learner
  restores its own journalled snapshot and replays only the suffix above
  it (via the ordinary catch-up path) instead of replaying the full
  history; a recovering acceptor reloads only the untruncated vote
  journal suffix plus its durable floor.

Safety note: retiring the coordinators' value-level dedup indexes below
the frontier means a command retransmitted long after its decision was
garbage-collected can be decided *again* in a fresh instance.  Learners
deduplicate execution (their delivered set rides inside every
checkpoint), so replicas still apply each command once -- this is the
standard production trade: the truncation window must outlast the
retransmission horizon, and anything older is deduplicated at the
application layer (our delivered-set is the client-session-table
analogue).

Knobs (:class:`CheckpointConfig`): ``interval`` (instances per
checkpoint), ``interval_bytes`` (optional payload-size trigger),
``gc_quorum`` (collective-frontier policy), ``chunk_size`` (snapshot
transfer granularity), ``advertise_interval`` (frontier re-announce
period).  With ``checkpoint=None`` (the default) nothing is ever
truncated -- the pre-checkpoint behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Callable, Hashable

from repro.core.checkpoint import (
    CheckpointConfig,
    FrontierTracker,
    ICheckpoint,
    ISnapshotChunk,
    ISnapshotOffer,
    ISnapshotRequest,
    ITruncated,
    RetransmitConfig,
    SnapshotInstaller,
    serve_snapshot,
)
from repro.core.liveness import FailureDetector, Heartbeat, LivenessConfig
from repro.core.sessions import SessionConfig, SessionDedup
from repro.cstruct.digest import DeltaTrail
from repro.core.quorums import QuorumSystem
from repro.core.rounds import ZERO, RoundId, RoundSchedule
from repro.core.runtime import Process, Runtime
from repro.core.topology import Topology

NOOP = "__noop__"

# Entries kept in a learner's decided trail (the peer-catch-up delta
# window): stamps older than this many instances fall back to full
# values.  Sized a few multiples of RetransmitConfig.max_resend so any
# laggard the retransmission layer still serves hits the delta path.
_DECIDED_TRAIL_LIMIT = 256


def _check_consistent(instance: int, existing: Hashable, val: Hashable) -> None:
    """Safety oracle: one instance must never yield two decisions."""
    if existing != val:
        raise AssertionError(
            f"consistency violation in instance {instance}: "
            f"{existing!r} vs {val!r}"
        )


@dataclass(frozen=True)
class Batch:
    """An ordered pack of client commands decided by one instance."""

    cmds: tuple[Hashable, ...]

    def __len__(self) -> int:
        return len(self.cmds)

    def __iter__(self):
        return iter(self.cmds)


@dataclass
class BatchingConfig:
    """Batching/pipelining knobs (see the module docstring).

    Attributes:
        max_batch: Commands per batch; reaching it flushes immediately.
            With ``adaptive`` on, this is the *cap* of the adaptive size.
        flush_interval: Virtual-time deadline after the first buffered
            command at which a partial batch is flushed anyway.
        pipeline_depth: Maximum self-assigned in-flight (undecided)
            instances per coordinator, counting *fresh* proposals only.
        retry_lane: Reserved in-flight slots for retried proposals (and
            requeued race losers).  Retries never compete with fresh
            batches for ``pipeline_depth`` slots -- under loss the
            recovery traffic drains through its own lane instead of
            collapsing fresh throughput (total in-flight is bounded by
            ``pipeline_depth + retry_lane``).
        adaptive: Size batches from the observed arrival rate instead of
            always waiting for ``max_batch`` commands: an EWMA of the
            proposer's inter-arrival time estimates how many commands one
            ``flush_interval`` will see, and the batch ships at that size
            (clamped to [``min_batch``, ``max_batch``]).  Sparse traffic
            ships small batches immediately (latency); dense traffic
            fills up to the cap (throughput).
        ewma_alpha: Smoothing factor of the inter-arrival EWMA in (0, 1].
        min_batch: Lower clamp of the adaptive batch size.
    """

    max_batch: int = 8
    flush_interval: float = 2.0
    pipeline_depth: int = 4
    retry_lane: int = 2
    adaptive: bool = False
    ewma_alpha: float = 0.25
    min_batch: int = 1

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if self.flush_interval <= 0:
            raise ValueError("flush_interval must be positive")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be at least 1")
        if self.retry_lane < 1:
            raise ValueError("retry_lane must be at least 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 1 <= self.min_batch <= self.max_batch:
            raise ValueError("min_batch must be in [1, max_batch]")


# -- messages -----------------------------------------------------------------


@dataclass(frozen=True)
class IPropose:
    cmd: Hashable
    coord_quorum: frozenset[int] | None = None
    acceptor_quorum: frozenset[str] | None = None
    # True for a retransmission (proposer backoff timer or crash-recovery
    # re-ship): coordinators serve retries from the reserved retry lane so
    # recovery traffic never starves fresh proposals of pipeline slots.
    retry: bool = False


@dataclass(frozen=True)
class I1a:
    rnd: RoundId


@dataclass(frozen=True)
class I1b:
    rnd: RoundId
    acceptor: str
    votes: tuple[tuple[int, RoundId, Hashable], ...]  # (instance, vrnd, vval)
    # The acceptor's vote-journal truncation floor.  Phase 1's no-op
    # hole-closing rule ("no replier voted => nothing chosen") is only
    # sound where vote absence means *never voted*; below the floor it
    # can mean *voted, then truncated*, so the coordinator must start
    # hole-closing above every replier's floor.
    floor: int = 0


@dataclass(frozen=True)
class I2a:
    rnd: RoundId
    instance: int
    val: Hashable
    coord: int
    # True only for the reliability tick's periodic re-offer of an
    # undecided assignment: receivers answer with their journalled
    # vote/decision instead of staying silent, without that echo chatter
    # being paid by ordinary (first-time, possibly late) 2as.
    reannounce: bool = False


@dataclass(frozen=True)
class I2b:
    rnd: RoundId
    instance: int
    val: Hashable
    acceptor: str


@dataclass(frozen=True)
class INack:
    rnd: RoundId
    higher: RoundId


@dataclass(frozen=True)
class IAck:
    """Learner -> proposers: *value* was decided (delivery confirmed).

    ``instance`` is the decided instance the learner observed (-1 when
    unknown, e.g. a re-ack for a truncated instance): it lets proposers
    judge when the collective checkpoint frontier has passed the value,
    at which point state transfer -- not retransmission -- covers any
    remaining laggard and the unacked buffer entry can be retired.
    """

    value: Hashable
    instance: int = -1


@dataclass(frozen=True)
class IDecided:
    """Decision re-announcement: *instance* was chosen with *val*.

    Sent by coordinators (answering retransmitted proposals of decided
    values, and gossip-reported holes) and by learners (answering peer
    catch-up requests).  Safe to trust: the sender observed a classic
    acceptor quorum vote for *val*, the same evidence a learner uses.
    """

    instance: int
    val: Hashable


@dataclass(frozen=True)
class IGossip:
    """Coordinator gossip: observed-but-unserved commands and holes."""

    observed: tuple[Hashable, ...]
    holes: tuple[int, ...]


@dataclass(frozen=True)
class ICatchUp:
    """Learner -> acceptors/peers: re-send evidence for *instances*.

    ``frontier``/``digest`` stamp the requester's contiguous delivery
    prefix with the delta wire protocol's ``(size, digest)`` scheme: a
    peer learner whose decided trail contains that base answers with one
    :class:`IDecidedDelta` suffix instead of per-instance full values.
    ``frontier == -1`` means "no stamp" (pre-delta requester, or a
    snapshot install in flight); acceptors ignore the stamp entirely.
    """

    instances: tuple[int, ...]
    frontier: int = -1
    digest: int = 0


@dataclass(frozen=True)
class IDecidedDelta:
    """Peer catch-up suffix: contiguous decisions above a matched stamp.

    ``entries`` is ``((instance, value), ...)`` starting exactly at the
    requester's stamped frontier -- the suffix of the responder's
    decided trail after the base the requester advertised.  Mismatched
    or too-old stamps never produce this message; the responder falls
    back to per-instance :class:`IDecided` full values, so a digest
    collision costs a redundant transfer, never correctness (the
    receiver still runs the usual consistency oracle per entry).
    """

    entries: tuple[tuple[int, Hashable], ...]


@dataclass
class InstancesConfig:
    topology: Topology
    quorums: QuorumSystem
    schedule: RoundSchedule
    liveness: LivenessConfig | None = None
    batching: BatchingConfig | None = None
    retransmit: RetransmitConfig | None = None
    checkpoint: CheckpointConfig | None = None
    sessions: SessionConfig | None = None

    def __post_init__(self) -> None:
        if self.sessions is not None and self.checkpoint is None:
            # The session windows' dedup evidence rides the checkpoint --
            # bounding dedup memory without a snapshot carrier would lose
            # the at-most-once guarantee across install/recovery.
            raise ValueError("sessions require checkpoint (the snapshot carrier)")
        if self.checkpoint is not None and self.retransmit is None:
            # Truncation makes the engine depend on the reliability
            # layer: once a vote journal is compacted, any missed message
            # can only be healed by catch-up (ICatchUp/ITruncated/
            # snapshot install), and those re-drivers live behind
            # RetransmitConfig.  Checkpointing without them would
            # garbage-collect state that nothing can re-deliver.
            raise ValueError("checkpoint requires retransmit (the catch-up layer)")
        if (
            self.checkpoint is not None
            and self.checkpoint.gc_quorum is not None
            and self.checkpoint.gc_quorum > len(self.topology.learners)
        ):
            # Silently clamping would truncate with fewer durable
            # checkpoint copies than the operator's policy promised.
            raise ValueError(
                f"gc_quorum {self.checkpoint.gc_quorum} exceeds the"
                f" {len(self.topology.learners)} learners"
            )


@dataclass
class _RetryState:
    """Per-value retransmission bookkeeping at a proposer."""

    timer: object
    interval: float
    acked: set = field(default_factory=set)
    attempts: int = 0
    # Lowest decided instance reported by any ack (-1: none yet).  Once
    # the collective checkpoint frontier passes it, every checkpoint at
    # the GC quorum contains the value -- laggards are served by snapshot
    # install and retransmission can stop.
    instance: int = -1


class SMRProposer(Process):
    """Proposes commands, optionally balancing load across quorums.

    With batching enabled the proposer is the *batcher*: commands are
    buffered and shipped as one :class:`Batch` value when the buffer
    reaches ``max_batch`` or ``flush_interval`` after the first buffered
    command (whichever comes first), amortizing the per-instance protocol
    cost over many commands.

    With retransmission enabled every shipped value is journalled and
    re-broadcast on a backoff timer until *every* learner has acked it
    (see the module docstring), making the propose path live on any
    fair-lossy network.
    """

    # The frontier tracker is a cache of checkpoint advertisements; it is
    # repopulated by the next ICheckpoint gossip after a restart.  (The
    # retransmission buffer, by contrast, *is* journalled -- see
    # on_recover.)
    VOLATILE = {"_tracker"}

    def __init__(self, pid: str, sim: Runtime, config: InstancesConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.balance_load = False
        self.batches_sent = 0
        self.retransmissions = 0
        self._buffer: list[Hashable] = []
        self._flush_timer = None
        self._unacked: dict[Hashable, _RetryState] = {}
        self._arrival_ewma: float | None = None  # smoothed inter-arrival time
        self._last_arrival: float | None = None
        self._tracker = FrontierTracker.from_config(config)

    def target_batch(self) -> int:
        """The current batch-size trigger (adaptive or static).

        With adaptive sizing the EWMA of inter-arrival time estimates how
        many commands arrive within one ``flush_interval``; the batch
        ships at that size so sparse traffic is not held hostage to a cap
        it will never reach, while dense traffic still fills ``max_batch``.
        """
        batching = self.config.batching
        if batching is None:
            return 1
        if not batching.adaptive or not self._arrival_ewma:
            return batching.max_batch
        expected = int(batching.flush_interval / self._arrival_ewma)
        return max(batching.min_batch, min(batching.max_batch, expected))

    def _note_arrival(self) -> None:
        now = self.now
        if self._last_arrival is not None:
            delta = now - self._last_arrival
            alpha = self.config.batching.ewma_alpha
            if self._arrival_ewma is None:
                self._arrival_ewma = delta
            else:
                self._arrival_ewma = alpha * delta + (1 - alpha) * self._arrival_ewma
        self._last_arrival = now

    def propose(self, cmd: Hashable) -> None:
        if not self.alive:
            # A crashed proposer accepts nothing -- the command is a lost
            # client message, not a half-registered unacked value (which
            # would journal a retry whose timer never re-arms).  Client
            # resubmission or proposer rotation is the re-driver here.
            return
        self.metrics.record_propose(cmd, self.now)
        batching = self.config.batching
        if batching is None:
            self._ship(cmd)
            return
        if batching.adaptive:
            self._note_arrival()
        self._buffer.append(cmd)
        # Journal the buffer: unlike the unbatched engine, buffered commands
        # have not reached any coordinator yet, so a proposer crash would
        # otherwise lose them beyond the reach of the liveness machinery.
        self.storage.write("batch_buffer", tuple(self._buffer))
        if len(self._buffer) >= self.target_batch():
            self.flush()
        elif self._flush_timer is None:
            self._flush_timer = self.set_timer(batching.flush_interval, self.flush)

    def flush(self) -> None:
        """Ship the buffered commands as one batch (partial batches too)."""
        if self._flush_timer is not None:
            self._flush_timer.cancel()
            self._flush_timer = None
        if not self._buffer:
            return
        batch = Batch(tuple(self._buffer))
        self._buffer.clear()
        self.storage.write("batch_buffer", ())
        self.batches_sent += 1
        self._ship(batch)

    # -- retransmission ----------------------------------------------------

    def _register_unacked(self, value: Hashable) -> bool:
        """Arm the retry timer for *value*; True if newly tracked."""
        retransmit = self.config.retransmit
        if retransmit is None or value in self._unacked:
            return False
        state = _RetryState(timer=None, interval=retransmit.retry_interval)
        state.timer = self.set_timer(state.interval, lambda: self._retry(value))
        self._unacked[value] = state
        return True

    def _ship(self, value: Hashable) -> None:
        """Forward *value* and, with retransmission on, track it unacked."""
        if self._register_unacked(value):
            self._journal_unacked()
        self._forward(value)

    def _retry(self, value: Hashable) -> None:
        state = self._unacked.get(value)
        retransmit = self.config.retransmit
        if state is None or retransmit is None:
            return
        self.retransmissions += 1
        state.attempts += 1
        # Exponential backoff, capped: a value stuck behind a long outage
        # keeps being offered without flooding the network meanwhile.
        state.interval = min(state.interval * retransmit.backoff, retransmit.max_interval)
        state.timer = self.set_timer(state.interval, lambda: self._retry(value))
        self._forward(value, retry=True)

    def on_iack(self, msg: IAck, src: Hashable) -> None:
        state = self._unacked.get(msg.value)
        if state is None:
            return
        state.acked.add(src)
        if msg.instance >= 0:
            state.instance = (
                msg.instance
                if state.instance < 0
                else min(state.instance, msg.instance)
            )
        if self._maybe_retire(msg.value):
            self._journal_unacked()

    def _maybe_retire(self, value: Hashable) -> bool:
        """Retire *value*'s retransmission once no learner can need it.

        Two sufficient conditions: every learner acked (retransmission
        drove them all, the PR-2 rule), or the collective checkpoint
        frontier passed the value's decided instance -- then every
        durable checkpoint at the GC quorum contains the value, any
        learner still lacking it recovers by snapshot install, and
        retrying on its behalf is wasted traffic that would pin the
        buffer for as long as the learner is down.  Returns whether the
        value was retired; the caller journals the shrunken buffer (so a
        batch of retirements costs one disk write, not one per value).
        """
        state = self._unacked.get(value)
        if state is None:
            return False
        retired = len(state.acked) >= len(self.config.topology.learners)
        if not retired and self._tracker is not None and state.instance >= 0:
            retired = self._tracker.safe_bound() > state.instance
        if retired:
            if state.timer is not None:
                self.drop_timer(state.timer)
            del self._unacked[value]
        return retired

    def on_icheckpoint(self, msg: ICheckpoint, src: Hashable) -> None:
        if self._tracker is None:
            return
        self._tracker.update(src, msg.frontier)
        any_retired = False
        for value in list(self._unacked):
            any_retired |= self._maybe_retire(value)
        if any_retired:
            self._journal_unacked()

    def _journal_unacked(self) -> None:
        self.storage.write("unacked", tuple(self._unacked))

    def _forward(self, value: Hashable, retry: bool = False) -> None:
        coord_quorum = None
        acceptor_quorum = None
        if self.balance_load:
            rng = self.sim.rng
            coords = list(self.config.schedule.coordinators)
            coord_quorum = frozenset(rng.sample(coords, len(coords) // 2 + 1))
            accs = list(self.config.topology.acceptors)
            acceptor_quorum = frozenset(
                rng.sample(accs, self.config.quorums.classic_quorum_size)
            )
        msg = IPropose(value, coord_quorum, acceptor_quorum, retry=retry)
        # Every coordinator hears the proposal (the leader needs it for
        # stuck detection); only the chosen quorum forwards it, so the
        # per-command forwarding load stays balanced (Section 4.1).
        self.broadcast(self.config.topology.coordinators, msg)

    def on_crash(self) -> None:
        self._buffer = []
        self._flush_timer = None
        self._unacked = {}
        self._arrival_ewma = None
        self._last_arrival = None
        self._tracker = FrontierTracker.from_config(self.config)

    def on_recover(self) -> None:
        # Unacked values first (they were already in flight, so the
        # re-ship is a retry), then the buffered partial batch.  The
        # rebuilt buffer equals the journal that was just read, so no
        # re-journalling is needed.
        for value in self.storage.read("unacked", ()):
            if self._register_unacked(value):
                self._forward(value, retry=True)
        buffered = self.storage.read("batch_buffer", ())
        if buffered:
            self._buffer = list(buffered)
            self.flush()


class SMRCoordinator(Process):
    """A coordinator of the multicoordinated replication group."""

    # Coordinators keep no stable state (Section 4.4): recovery starts a
    # higher round and phase 1 rebuilds the per-instance picture from the
    # acceptors' vote journals, so round bookkeeping, proposal lanes,
    # quorum buffers, decision mirrors and stats are all lost on crash.
    # (``_observed`` -- the proposal-dedup horizon -- is the one exception:
    # forgetting it would re-serve old commands, so it is journalled.)
    VOLATILE = {
        "_assigned_cmds",
        "_decided_values",
        "_hole_seen",
        "_last_round_change",
        "_owners",
        "_p1b",
        "_p2b",
        "_pending_cmds",
        "_retry_inflight",
        "_sent",
        "_sent_values",
        "_served",
        "_tracker",
        "assigned",
        "crnd",
        "decided",
        "gossip_sent",
        "highest_seen",
        "pending",
        "pending_retry",
        "phase1_done",
        "reannounced_2a",
        "reassignments",
    }

    def __init__(
        self, pid: str, sim: Runtime, config: InstancesConfig, index: int
    ) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.index = index
        self.crnd: RoundId = ZERO
        self.phase1_done = False
        self.next_instance = 0
        self.pending: list[IPropose] = []
        # Priority lane: retried proposals and requeued race losers.  They
        # are recovery traffic -- served first and from their own reserved
        # pipeline slots (BatchingConfig.retry_lane), so a loss storm
        # cannot collapse fresh throughput and fresh bursts cannot starve
        # recovery.
        self.pending_retry: list[IPropose] = []
        self.assigned: dict[int, IPropose] = {}  # instance -> proposal in flight
        self._retry_inflight: set[int] = set()  # assigned via the retry lane
        self.decided: dict[int, Hashable] = {}
        self.gc_floor = 0  # all per-instance state below is garbage-collected
        self.highest_seen: RoundId = ZERO
        self.reassignments = 0
        self._sent: dict[int, Hashable] = {}  # undecided instance -> 2a value
        self._owners: dict[int, int] = {}  # instance -> lowest coord index seen
        # Mirror indexes for O(1) membership on the per-proposal hot paths
        # (the dict .values() scans made proposal handling O(n^2) overall).
        self._pending_cmds: set[Hashable] = set()  # {p.cmd for p in pending}
        self._assigned_cmds: set[Hashable] = set()  # {p.cmd for p in assigned.values()}
        self._sent_values: dict[Hashable, int] = {}  # value -> live _sent entries
        self._decided_values: dict[Hashable, int] = {}  # value -> first instance
        self._observed: dict[Hashable, float] = {}  # every proposed command
        self._served: set[Hashable] = set()  # commands seen decided
        self._hole_seen: dict[int, float] = {}  # undecided gaps, first seen
        self._decided_frontier = 0  # all instances below are decided
        self._top_decided = -1  # highest decided instance
        self._p1b: dict[RoundId, dict[str, I1b]] = {}
        self._p2b: dict[int, dict[RoundId, dict[str, Hashable]]] = {}
        self._fd: FailureDetector | None = None
        self._last_round_change = 0.0
        self.gossip_sent = 0
        self.reannounced_2a = 0
        self._tracker = FrontierTracker.from_config(config)
        if config.liveness is not None:
            peers = list(enumerate(config.topology.coordinators))
            self._fd = FailureDetector(
                self, index, peers, config.liveness, on_check=self._progress_check
            )
            self._fd.start()
        if config.retransmit is not None:
            self.set_periodic_timer(
                config.retransmit.gossip_interval, self._reliability_tick
            )

    # -- round management --------------------------------------------------

    def start_round(self, rnd: RoundId) -> None:
        if not self.config.schedule.is_coordinator_of(self.index, rnd):
            raise ValueError(f"coordinator {self.index} does not coordinate {rnd}")
        if rnd <= self.crnd:
            raise ValueError(f"round {rnd} is not above {self.crnd}")
        self._adopt(rnd)
        self._last_round_change = self.now
        self.broadcast(self.config.topology.acceptors, I1a(rnd))

    def _adopt(self, rnd: RoundId) -> None:
        self.crnd = rnd
        self.phase1_done = False
        # In-flight commands of the previous round are re-driven here --
        # through the retry lane: they are recovery traffic, not fresh.
        # Sorted by instance so the retry order is canonical, not the
        # arrival order of the superseded round.
        for _, proposal in sorted(self.assigned.items()):
            if (
                proposal.cmd not in self._decided_values
                and proposal.cmd not in self._pending_cmds
            ):
                self.pending_retry.append(proposal)
                self._pending_cmds.add(proposal.cmd)
        self.assigned = {}
        self._assigned_cmds = set()
        self._retry_inflight = set()
        self._sent = {}
        self._sent_values = {}
        self._owners = {}
        self.highest_seen = max(self.highest_seen, rnd)

    def is_leader(self) -> bool:
        return self._fd.is_leader() if self._fd is not None else self.index == 0

    # -- phase 1 ----------------------------------------------------------------

    def on_i1b(self, msg: I1b, src: Hashable) -> None:
        rnd = msg.rnd
        self.highest_seen = max(self.highest_seen, rnd)
        if not self.config.schedule.is_coordinator_of(self.index, rnd):
            return
        if rnd > self.crnd:
            self._adopt(rnd)
        if rnd != self.crnd or self.phase1_done:
            return
        self._p1b.setdefault(rnd, {})[msg.acceptor] = msg
        replies = self._p1b[rnd]
        if len(replies) < self.config.quorums.classic_quorum_size:
            return
        self._finish_phase1(replies)

    def _finish_phase1(self, replies: dict[str, I1b]) -> None:
        """Re-send possibly chosen values; close gaps; resume service.

        Per instance this applies the Fast Paxos picking rule (Section
        2.2): a value must be re-proposed iff, at the highest round ``k``
        reported for the instance, it was reported by at least
        ``|Q| + q_k - n`` acceptors (it may have been chosen).  A
        multicoordinated round can leave *different* values accepted by
        different (non-quorum) acceptor subsets after an instance race, so
        the naive "value of the highest vrnd" rule would be unsafe here.

        With log truncation, vote *absence* is no longer evidence below a
        replier's journal floor (the vote may have been truncated after a
        decision, not never cast), so hole-closing starts above the
        highest replier floor.  Safe in both directions: a floor is
        derived from checkpoint advertisements (everything below it is
        decided and checkpoint-covered -- nothing there needs closing),
        and above every replier floor a quorum member that voted in a
        lower-round decision still reports that vote, restoring the
        "no replier voted => nothing chosen" invariant.
        """
        self.phase1_done = True
        replier_floor = max((reply.floor for reply in replies.values()), default=0)
        # drain=False: draining mid-phase-1 would assign fresh instances
        # that the hole-closing loop below would then double-propose.
        self._apply_gc(replier_floor, drain=False)
        votes_by_instance: dict[int, list[tuple[RoundId, Hashable]]] = {}
        for acceptor in sorted(replies):
            for instance, vrnd, vval in replies[acceptor].votes:
                votes_by_instance.setdefault(instance, []).append((vrnd, vval))
        min_inter = (
            len(replies) + self.config.quorums.classic_quorum_size
            - self.config.quorums.n
        )
        # Cover every instance this coordinator knows about -- reported
        # votes, decided instances and gossip-known claims alike -- so that
        # undecided holes are closed with no-ops (nothing can be chosen at
        # a lower round for an instance no phase-1 replier voted in, since
        # the repliers' quorum intersects every quorum of lower rounds).
        # Instances below the GC floor are decided and checkpointed; they
        # need no closing (and the acceptors truncated their votes anyway).
        top = max(
            [self.next_instance - 1, *votes_by_instance, *self.decided],
            default=-1,
        )
        for instance in range(self.gc_floor, top + 1):
            if instance in self.decided:
                continue
            value = self._pick_for_instance(
                votes_by_instance.get(instance, []), min_inter
            )
            self._send_2a(instance, value, None)
        self.next_instance = max(self.next_instance, top + 1)
        self._drain()

    @staticmethod
    def _pick_for_instance(
        votes: list[tuple[RoundId, Hashable]], min_inter: int
    ) -> Hashable:
        if not votes:
            return NOOP
        k = max(vrnd for vrnd, _ in votes)
        counts: dict[Hashable, int] = {}
        for vrnd, vval in votes:
            if vrnd == k:
                counts[vval] = counts.get(vval, 0) + 1
        candidates = [value for value, count in counts.items() if count >= min_inter]
        if candidates:
            return candidates[0]  # at most one by the quorum requirement
        # Nothing provably chosen: free to pick; prefer a reported value so
        # the raced command still gets decided.
        return max(counts.items(), key=lambda kv: (kv[1], repr(kv[0])))[0]

    # -- proposals ------------------------------------------------------------------

    def on_ipropose(self, msg: IPropose, src: Hashable) -> None:
        if msg.cmd in self._decided_values:
            # A retransmitted proposal of a chosen value: the proposer (and
            # possibly some learners) missed the decision.  Re-announce it
            # instead of re-driving consensus; the learners (re-)ack.
            if self.config.retransmit is not None:
                instance = self._decided_values[msg.cmd]
                self.broadcast(
                    self.config.topology.learners,
                    IDecided(instance, self.decided[instance]),
                )
            return
        # Track every command for the leader's stuck detection, even when
        # this coordinator is not in the command's quorum.
        if msg.cmd not in self._observed and msg.cmd not in self._served:
            self._observed[msg.cmd] = self.now
            self._journal_observed()
        if msg.coord_quorum is not None and self.index not in msg.coord_quorum:
            return
        if msg.cmd in self._pending_cmds or msg.cmd in self._assigned_cmds:
            return
        if msg.retry:
            self.pending_retry.append(msg)
        else:
            self.pending.append(msg)
        self._pending_cmds.add(msg.cmd)
        self._drain()

    def _drain(self) -> None:
        if not self.phase1_done:
            return
        if not self.config.schedule.is_coordinator_of(self.index, self.crnd):
            return
        batching = self.config.batching
        window = batching.pipeline_depth if batching is not None else None
        retry_window = batching.retry_lane if batching is not None else None
        # Retry lane first (priority): recovery traffic uses its reserved
        # slots and never counts against the fresh window below.
        while self.pending_retry:
            if (
                retry_window is not None
                and len(self._retry_inflight) >= retry_window
            ):
                break  # retry lane full; refilled on the next decision
            proposal = self.pending_retry.pop(0)
            self._pending_cmds.discard(proposal.cmd)
            if self._already_driving(proposal.cmd):
                continue
            instance = self.next_instance
            self.next_instance += 1
            self._retry_inflight.add(instance)
            self._send_2a(instance, proposal.cmd, proposal)
        while self.pending:
            fresh_inflight = len(self.assigned) - len(self._retry_inflight)
            if window is not None and fresh_inflight >= window:
                return  # pipeline full; refilled on the next decision
            proposal = self.pending.pop(0)
            self._pending_cmds.discard(proposal.cmd)
            if self._already_driving(proposal.cmd):
                continue
            instance = self.next_instance
            self.next_instance += 1
            self._send_2a(instance, proposal.cmd, proposal)

    def _already_driving(self, cmd: Hashable) -> bool:
        return (
            cmd in self._decided_values
            or cmd in self._sent_values
            or cmd in self._assigned_cmds
        )

    def _note_sent(self, instance: int, value: Hashable) -> None:
        self._sent[instance] = value
        self._sent_values[value] = self._sent_values.get(value, 0) + 1

    def _retire_sent(self, instance: int) -> None:
        """Drop the 2a bookkeeping of a decided instance (state GC)."""
        if instance not in self._sent:
            return
        value = self._sent.pop(instance)
        count = self._sent_values.get(value, 0) - 1
        if count <= 0:
            self._sent_values.pop(value, None)
        else:
            self._sent_values[value] = count

    def _send_2a(self, instance: int, value: Hashable, proposal: IPropose | None) -> None:
        if proposal is not None:
            self.assigned[instance] = proposal
            self._assigned_cmds.add(proposal.cmd)
        self._note_sent(instance, value)
        self._owners.setdefault(instance, self.index)
        self.metrics.count_command_handled(self.pid)
        targets = self.config.topology.acceptors
        if proposal is not None and proposal.acceptor_quorum is not None:
            targets = tuple(sorted(proposal.acceptor_quorum))
        self.broadcast(targets, I2a(self.crnd, instance, value, self.index))
        # Share the assignment with the round's other coordinators so
        # concurrent assignments converge (see on_i2a).
        peers = [
            pid
            for pid in self.config.topology.coordinator_pids(
                self.config.schedule.coordinators_of(self.crnd)
            )
            if pid != self.pid
        ]
        self.broadcast(peers, I2a(self.crnd, instance, value, self.index))

    # -- assignment convergence ------------------------------------------------------

    def on_i2a(self, msg: I2a, src: Hashable) -> None:
        """Endorse a peer coordinator's assignment for a fresh instance.

        Safety constraint (Section 3.1): a coordinator sends at most *one*
        value per instance per round, or two different values could each
        gather a full coordinator quorum and be accepted by different
        acceptor quorums.  So a peer's assignment is endorsed only for
        instances this coordinator has not claimed yet; conflicting claims
        are a genuine collision -- the instance stays undecided and the
        leader's recovery round (phase 1 + the picking rule) resolves it.
        """
        self.highest_seen = max(self.highest_seen, msg.rnd)
        if msg.rnd != self.crnd or not self.phase1_done:
            return
        if not self.config.schedule.is_coordinator_of(self.index, self.crnd):
            return
        instance = msg.instance
        self.next_instance = max(self.next_instance, instance + 1)
        if instance < self.gc_floor:
            # Below the collective checkpoint frontier: decided, applied
            # and garbage-collected.  A re-announcing peer stuck there
            # missed the frontier advertisements; the floor unsticks it.
            if self.config.retransmit is not None and msg.reannounce:
                self.send(src, ITruncated(self.gc_floor))
            return
        if instance in self.decided:
            # Already chosen (our 2a bookkeeping was retired).  Only a
            # *re-announced* 2a signals a peer stuck on the instance and
            # warrants an IDecided answer; ordinary late endorsements stay
            # silent so the lossless fast path pays no echo chatter.
            if self.config.retransmit is not None and msg.reannounce:
                self.send(src, IDecided(instance, self.decided[instance]))
            return
        if instance in self._sent:
            return  # our value for this instance is final within the round
        # Endorse: forward the same value so the coordinator quorum agrees.
        self._owners[instance] = min(self._owners.get(instance, msg.coord), msg.coord)
        self._note_sent(instance, msg.val)
        self.broadcast(
            self.config.topology.acceptors,
            I2a(self.crnd, instance, msg.val, self.index),
        )
        # Drop the command from our queues if a peer is already driving it.
        if msg.val in self._pending_cmds:
            self.pending = [p for p in self.pending if p.cmd != msg.val]
            self.pending_retry = [
                p for p in self.pending_retry if p.cmd != msg.val
            ]
            self._pending_cmds.discard(msg.val)

    # -- decision monitoring and instance-race reassignment (Section 4.2) --------------

    def on_i2b(self, msg: I2b, src: Hashable) -> None:
        self.highest_seen = max(self.highest_seen, msg.rnd)
        if msg.instance < self.gc_floor:
            return  # below the checkpoint frontier: settled and collected
        if msg.instance in self.decided:
            return  # late/duplicate votes for a settled instance
        votes = self._p2b.setdefault(msg.instance, {}).setdefault(msg.rnd, {})
        votes[msg.acceptor] = msg.val
        count = sum(1 for v in votes.values() if v == msg.val)
        if count < self.config.quorums.classic_quorum_size:
            return
        self._record_decided(msg.instance, msg.val)

    def _record_decided(self, instance: int, val: Hashable) -> None:
        """Note that *instance* chose *val*; retire its in-flight state.

        Retiring the ``_sent``/``assigned``/vote bookkeeping keeps
        per-coordinator state bounded by the number of *undecided*
        instances instead of growing monotonically, and unblocks requeued
        race losers (a command whose 2a lost its instance would otherwise
        stay shadowed by its own stale ``_sent`` entry until the next
        round change).
        """
        if instance in self.decided or instance < self.gc_floor:
            return
        self.decided[instance] = val
        self._decided_values.setdefault(val, instance)
        self._top_decided = max(self._top_decided, instance)
        while self._decided_frontier in self.decided:
            self._decided_frontier += 1
        self._served.add(val)
        if val in self._observed:
            del self._observed[val]
            self._journal_observed()
        self.next_instance = max(self.next_instance, instance + 1)
        self._p2b.pop(instance, None)
        self._hole_seen.pop(instance, None)
        self._owners.pop(instance, None)
        self._retire_sent(instance)
        self._retry_inflight.discard(instance)
        proposal = self.assigned.pop(instance, None)
        if proposal is not None:
            self._assigned_cmds.discard(proposal.cmd)
        if proposal is not None and proposal.cmd != val:
            # We lost the race for this instance; requeue our command
            # through the priority lane (it is recovery traffic now).
            self.reassignments += 1
            if (
                proposal.cmd not in self._decided_values
                and proposal.cmd not in self._pending_cmds
            ):
                self.pending_retry.append(proposal)
                self._pending_cmds.add(proposal.cmd)
                self._drain()
        if self.config.batching is not None:
            # A decision freed pipeline capacity; refill the window.
            self._drain()

    def on_idecided(self, msg: IDecided, src: Hashable) -> None:
        existing = self.decided.get(msg.instance)
        if existing is not None:
            _check_consistent(msg.instance, existing, msg.val)
        self._record_decided(msg.instance, msg.val)

    def on_inack(self, msg: INack, src: Hashable) -> None:
        self.highest_seen = max(self.highest_seen, msg.higher)

    def on_heartbeat(self, msg: Heartbeat, src: Hashable) -> None:
        if self._fd is not None:
            self._fd.on_heartbeat(msg)

    # -- reliability layer (gossip + 2a re-announce) -----------------------------------

    def _journal_observed(self) -> None:
        """Persist the observed command set (one batched disk write).

        Without this, ``on_crash`` discards ``_observed`` and a proposal
        seen only by this coordinator is silently lost until the proposer
        retransmits -- and forever if retransmission is off.  The set only
        holds *unserved* commands (decided ones are removed), so the write
        payload -- and the worst-case quadratic rewrite cost across a
        burst of n simultaneous proposals -- is bounded by the in-flight
        window, not the history.  That bound is why the whole set is
        rewritten rather than journalled per-key like acceptor votes:
        per-key removal would need tombstones (StableStorage has no
        delete) whose count *does* grow with history.  With neither
        liveness nor retransmission configured nothing ever reads the set
        back, so the write is skipped.
        """
        if self.config.liveness is None and self.config.retransmit is None:
            return
        self.storage.write("observed", tuple(self._observed))

    def _reliability_tick(self) -> None:
        """Periodic self-healing: re-offer 2as, gossip observed/holes."""
        retransmit = self.config.retransmit
        if retransmit is None:
            return
        # Re-announce our undecided 2a assignments (same value, same round
        # -- safe) to acceptors *and* peer coordinators, so a dropped 2a or
        # peer endorsement is eventually re-offered.  _sent only holds
        # undecided instances (decided ones are retired).
        if self.phase1_done and self.config.schedule.is_coordinator_of(
            self.index, self.crnd
        ):
            peers = [
                pid
                for pid in self.config.topology.coordinator_pids(
                    self.config.schedule.coordinators_of(self.crnd)
                )
                if pid != self.pid
            ]
            for instance, value in list(islice(self._sent.items(), retransmit.max_resend)):
                self.reannounced_2a += 1
                message = I2a(self.crnd, instance, value, self.index, reannounce=True)
                self.broadcast(self.config.topology.acceptors, message)
                self.broadcast(peers, message)
        # Gossip observed-but-unserved commands (so they reach the leader's
        # stuck detection) and undecided holes (peers that know the
        # decision answer with IDecided).
        observed = tuple(islice(self._observed, retransmit.max_resend))
        holes = tuple(self._holes(limit=retransmit.max_resend))
        if observed or holes:
            self.gossip_sent += 1
            peers = [
                pid for pid in self.config.topology.coordinators if pid != self.pid
            ]
            self.broadcast(peers, IGossip(observed, holes))

    def _holes(self, limit: int | None = None) -> list[int]:
        """Undecided instances below the top decided instance.

        Scans only the [frontier, top] window -- everything below the
        contiguous decided frontier is settled -- so quiescent ticks cost
        O(1) instead of rescanning the full decided history.
        """
        holes = []
        for j in range(self._decided_frontier, self._top_decided):
            if limit is not None and len(holes) >= limit:
                break
            if j not in self.decided:
                holes.append(j)
        return holes

    def on_igossip(self, msg: IGossip, src: Hashable) -> None:
        changed = False
        for command in msg.observed:
            instance = self._decided_values.get(command)
            if instance is not None:
                # The sender gossips a command we know is decided (it may
                # have crashed across the decision and reloaded a stale
                # observed set): answer so it can retire the entry instead
                # of re-gossiping it forever.
                self.send(src, IDecided(instance, self.decided[instance]))
                continue
            if command not in self._observed and command not in self._served:
                self._observed[command] = self.now
                changed = True
        if changed:
            self._journal_observed()
        for instance in msg.holes:
            value = self.decided.get(instance)
            if value is not None:
                self.send(src, IDecided(instance, value))

    # -- checkpointing / garbage collection ---------------------------------------------

    def on_icheckpoint(self, msg: ICheckpoint, src: Hashable) -> None:
        if self._tracker is None:
            return
        self._tracker.update(src, msg.frontier)
        self._apply_gc(self._tracker.safe_bound())

    def on_itruncated(self, msg: ITruncated, src: Hashable) -> None:
        # An acceptor (or peer coordinator) already collected below its
        # floor: everything there is decided and checkpointed.  Adopt the
        # floor -- it may run ahead of our own tracker if we missed
        # ICheckpoint advertisements.
        self._apply_gc(msg.floor)

    def _apply_gc(self, bound: int, drain: bool = True) -> None:
        """Retire every per-instance record below *bound*.

        *bound* is the collective safe frontier: every instance below it
        is decided and covered by a durable checkpoint at the policy
        quorum of learners.  The value-level dedup indexes
        (``_decided_values``/``_served``) are pruned with their instance:
        a command retransmitted from beyond the checkpoint window may be
        decided again in a fresh instance, which learners deduplicate
        (see the module docstring's safety note).
        """
        if self._tracker is None or bound <= self.gc_floor:
            return
        self.gc_floor = bound
        # Journal the floor: a crash-recovered coordinator must not treat
        # the truncated prefix [0, floor) as unserved holes -- its phase 1
        # would otherwise re-flood O(history) no-op 2as that the acceptors
        # can only answer with ITruncated.
        self.storage.write("gc_floor", bound)
        for instance in [i for i in self.decided if i < bound]:
            val = self.decided.pop(instance)
            if self._decided_values.get(val) == instance:
                del self._decided_values[val]
                self._served.discard(val)
        for instance in [i for i in self._sent if i < bound]:
            self._retire_sent(instance)
        for instance in [i for i in self._p2b if i < bound]:
            del self._p2b[instance]
        for instance in [i for i in self._owners if i < bound]:
            del self._owners[instance]
        for instance in [i for i in self._hole_seen if i < bound]:
            del self._hole_seen[instance]
        self._retry_inflight = {i for i in self._retry_inflight if i >= bound}
        for instance in [i for i in self.assigned if i < bound]:
            proposal = self.assigned.pop(instance)
            self._assigned_cmds.discard(proposal.cmd)
            # The instance was decided (it is below a delivery frontier);
            # if our command lost the race and we never saw the decision,
            # re-drive it -- a duplicate decision is deduplicated at the
            # learners, a lost command would be lost forever.
            if (
                proposal.cmd not in self._decided_values
                and proposal.cmd not in self._pending_cmds
            ):
                self.pending_retry.append(proposal)
                self._pending_cmds.add(proposal.cmd)
        self._decided_frontier = max(self._decided_frontier, bound)
        self._top_decided = max(self._top_decided, bound - 1)
        self.next_instance = max(self.next_instance, bound)
        if drain:
            self._drain()

    # -- liveness -----------------------------------------------------------------------

    def _progress_check(self) -> None:
        liveness = self.config.liveness
        if liveness is None or not self.is_leader():
            return
        if self.now - self._last_round_change < liveness.stuck_timeout:
            return
        active = self.config.schedule.is_coordinator_of(self.index, self.crnd)
        aged = [
            cmd
            for cmd, since in self._observed.items()
            if self.now - since > liveness.stuck_timeout
        ]
        self._hole_seen = {
            j: self._hole_seen.get(j, self.now) for j in self._holes()
        }
        aged_holes = [
            j
            for j, since in self._hole_seen.items()
            if self.now - since > liveness.stuck_timeout
        ]
        # In-flight commands and momentary gaps are normal; only *aged*
        # unserved commands or aged delivery holes indicate a stuck round.
        stuck = bool(aged) or bool(aged_holes)
        if active and not self.phase1_done and self.crnd > ZERO:
            stuck = True  # phase 1 never completed; retry with a new round
        if not stuck and active and self.phase1_done:
            return
        if not stuck and not active:
            return
        base = max(self.highest_seen, self.crnd)
        rnd = RoundId(
            mcount=base.mcount,
            count=base.count + 1,
            coord=self.index,
            rtype=liveness.recovery_rtype,
        )
        # _adopt (inside start_round) requeues our in-flight commands; the
        # leader additionally takes over every observed-but-unserved
        # command, covering commands stuck at other coordinators.
        self.start_round(rnd)
        for cmd in aged:
            if cmd not in self._pending_cmds:
                # Stuck commands are recovery traffic: priority lane.
                self.pending_retry.append(IPropose(cmd, retry=True))
                self._pending_cmds.add(cmd)

    # -- crash-recovery -----------------------------------------------------------------

    def on_crash(self) -> None:
        self.crnd = ZERO
        self.phase1_done = False
        self.pending = []
        self.pending_retry = []
        self.assigned = {}
        self._retry_inflight = set()
        self.decided = {}
        self.gc_floor = 0
        self._tracker = FrontierTracker.from_config(self.config)
        self._sent = {}
        self._owners = {}
        self._pending_cmds = set()
        self._assigned_cmds = set()
        self._sent_values = {}
        self._decided_values = {}
        self._observed = {}
        self._served = set()
        self._hole_seen = {}
        self._decided_frontier = 0
        self._top_decided = -1
        self._p1b = {}
        self._p2b = {}

    def on_recover(self) -> None:
        # Reload the journalled observed set: proposals seen only by this
        # coordinator before the crash must stay visible to stuck
        # detection and gossip.  Observation times restart at *now* so the
        # aging clock is conservative across the outage.
        for command in self.storage.read("observed", ()):
            self._observed.setdefault(command, self.now)
        # Reload the GC floor: everything below it was decided and
        # checkpointed before the crash (monotone evidence), so phase 1
        # must not re-open it as holes.
        floor = self.storage.read("gc_floor", 0)
        if floor > 0:
            self.gc_floor = floor
            self._decided_frontier = max(self._decided_frontier, floor)
            self._top_decided = max(self._top_decided, floor - 1)
            self.next_instance = max(self.next_instance, floor)
        if self._fd is not None:
            self._fd.start()
        if self.config.retransmit is not None:
            self.set_periodic_timer(
                self.config.retransmit.gossip_interval, self._reliability_tick
            )


class SMRAcceptor(Process):
    """Per-instance votes under one (global) round number."""

    # Lost on crash by design: 2a quorum buffers are rebuilt by
    # retransmission, the frontier tracker by checkpoint gossip; the rest
    # are statistics.  Stable state is rnd plus the per-instance vote
    # journal (restored in on_recover).
    VOLATILE = {
        "_collided",
        "_p2a",
        "_tracker",
        "collisions_detected",
        "commands_accepted",
    }

    def __init__(self, pid: str, sim: Runtime, config: InstancesConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.rnd: RoundId = ZERO
        self.votes: dict[int, tuple[RoundId, Hashable]] = {}
        self.commands_accepted = 0
        self.collisions_detected = 0
        self.gc_floor = 0  # votes below are checkpointed and truncated
        self._p2a: dict[tuple[int, RoundId], dict[int, Hashable]] = {}
        self._collided: set[tuple[int, RoundId]] = set()
        self._tracker = FrontierTracker.from_config(config)

    def on_i1a(self, msg: I1a, src: Hashable) -> None:
        if msg.rnd <= self.rnd:
            if msg.rnd < self.rnd:
                self.send(src, INack(msg.rnd, self.rnd))
            return
        self.rnd = msg.rnd
        self.storage.write("rnd", msg.rnd)
        votes = tuple(
            (instance, vrnd, vval)
            for instance, (vrnd, vval) in sorted(self.votes.items())
        )
        coords = self.config.topology.coordinator_pids(
            self.config.schedule.coordinators_of(msg.rnd)
        )
        self.broadcast(coords, I1b(msg.rnd, self.pid, votes, floor=self.gc_floor))

    def on_i2a(self, msg: I2a, src: Hashable) -> None:
        if msg.rnd < self.rnd:
            self.send(src, INack(msg.rnd, self.rnd))
            return
        if msg.instance < self.gc_floor:
            # The instance is below the checkpoint frontier: decided,
            # applied, vote truncated.  Tell the (lagging) coordinator so
            # it adopts the floor instead of re-offering forever.
            self.send(src, ITruncated(self.gc_floor))
            return
        vote = self.votes.get(msg.instance)
        if vote is not None and vote[0] >= msg.rnd:
            # Already voted for this instance at this round or higher: the
            # 2a cannot change the vote, so never rebuild the (released)
            # quorum buffer -- a late third endorsement would otherwise
            # leak one _p2a entry per decided instance.  A *re-offered* 2a
            # additionally means its sender missed our I2b (e.g. the whole
            # I2b-to-coordinators fan-out was lost while the learners
            # still decided): re-send the journalled vote so the senders'
            # decision tracking converges and their re-announce loop
            # terminates.  Ordinary late 2as stay silent -- no echo
            # chatter on the lossless fast path.
            if msg.reannounce:
                self.send(src, I2b(vote[0], msg.instance, vote[1], self.pid))
            return
        key = (msg.instance, msg.rnd)
        buffer = self._p2a.setdefault(key, {})
        buffer[msg.coord] = msg.val
        values = {v for v in buffer.values()}
        if len(values) > 1 and key not in self._collided:
            # Instance race: different coordinators forwarded different
            # commands.  Nothing is accepted for the losing assignments;
            # the coordinators reassign via the 2b stream (Section 4.2).
            self._collided.add(key)
            self.collisions_detected += 1
        senders = frozenset(buffer)
        for quorum in self.config.schedule.coord_quorums(msg.rnd):
            if not quorum <= senders:
                continue
            quorum_values = {buffer[c] for c in quorum}
            if len(quorum_values) != 1:
                continue
            # Singleton by the guard above -- extraction order-independent.
            # protolint: ignore[determinism]
            self._accept(msg.rnd, msg.instance, next(iter(quorum_values)))
            return

    def _accept(self, rnd: RoundId, instance: int, value: Hashable) -> None:
        if rnd < self.rnd:
            return
        current = self.votes.get(instance)
        if current is not None and current[0] >= rnd:
            return
        self.rnd = max(self.rnd, rnd)
        self.votes[instance] = (rnd, value)
        self.commands_accepted += 1
        self.storage.append("vote", instance, (rnd, value))
        # The 2a quorum buffer did its job; drop it so per-acceptor state
        # tracks undecided instances only (on_i2a's vote guard keeps late
        # 2as for this instance from rebuilding it).
        self._p2a.pop((instance, rnd), None)
        self._collided.discard((instance, rnd))
        vote = I2b(rnd, instance, value, self.pid)
        self.broadcast(self.config.topology.learners, vote)
        coords = self.config.topology.coordinator_pids(
            self.config.schedule.coordinators_of(rnd)
        )
        self.broadcast(coords, vote)

    def on_icatchup(self, msg: ICatchUp, src: Hashable) -> None:
        """Answer a learner's gap request from the journalled votes.

        Re-sending the recorded (vrnd, vval) is the paper's fair-lossy
        retransmission: if the value was chosen, a quorum voted for it at
        one round, and repeated catch-up eventually reassembles that
        quorum at the requesting learner.
        """
        answered_truncated = False
        for instance in msg.instances:
            vote = self.votes.get(instance)
            if vote is not None:
                self.send(src, I2b(vote[0], instance, vote[1], self.pid))
            elif instance < self.gc_floor and not answered_truncated:
                # The request is below the log horizon: the vote journal
                # cannot answer it any more.  Point the learner at the
                # snapshot tier (its peers' checkpoints) instead.
                self.send(src, ITruncated(self.gc_floor))
                answered_truncated = True

    # -- checkpointing / log truncation ------------------------------------

    def on_icheckpoint(self, msg: ICheckpoint, src: Hashable) -> None:
        if self._tracker is None:
            return
        self._tracker.update(src, msg.frontier)
        self._apply_gc(self._tracker.safe_bound())

    def _apply_gc(self, bound: int) -> None:
        """Truncate votes (memory and journal) below *bound*.

        Safe by the checkpoint policy: a quorum of learners holds durable
        snapshots covering every instance below the bound, so the votes
        can never again be needed as decision evidence -- catch-up below
        the floor is answered with ``ITruncated`` and served by snapshot
        transfer.  The journal truncation durably records the floor, so
        recovery can tell "truncated" from "never voted".
        """
        if self._tracker is None or bound <= self.gc_floor:
            return
        self.gc_floor = bound
        for instance in [i for i in self.votes if i < bound]:
            del self.votes[instance]
        for key in [k for k in self._p2a if k[0] < bound]:
            del self._p2a[key]
            self._collided.discard(key)
        self.storage.truncate_below("vote", bound)

    def on_crash(self) -> None:
        self.rnd = ZERO
        self.votes = {}
        self.gc_floor = 0
        self._p2a = {}
        self._collided = set()
        self._tracker = FrontierTracker.from_config(self.config)

    def on_recover(self) -> None:
        # Snapshot-era recovery: the durable floor plus the untruncated
        # journal suffix -- not the full history -- rebuild the vote map.
        self.rnd = self.storage.read("rnd", ZERO)
        self.gc_floor = self.storage.floor("vote")
        for instance, vote in self.storage.prefix_items("vote"):
            self.votes[instance] = vote


class SMRLearner(Process):
    """Learns per-instance decisions; delivers them in instance order.

    Batched values are unpacked here: replicas observe individual commands
    in instance order, then intra-batch order, so the delivered sequence is
    the same total order whether or not batching is enabled upstream.

    With retransmission enabled the learner also self-heals: it acks every
    decision to the proposers (retiring their retransmission buffers),
    and a periodic gap check re-requests evidence for undecided instances
    below its highest decided instance -- from the acceptors (which answer
    with a fresh ``I2b`` from their vote journal) and from peer learners
    (which answer known decisions with ``IDecided``).

    With checkpointing enabled the learner is the engine's snapshotter:
    every ``interval`` delivered instances it captures the attached
    replica's state at the delivery frontier, journals the checkpoint,
    truncates its own decided log below it and advertises the frontier
    (``ICheckpoint``) so the cluster can garbage-collect.  Catch-up turns
    two-tier: gaps above the cluster's truncation floor are filled from
    the log as before; gaps below it trigger chunked, resumable snapshot
    install from a peer followed by ordinary suffix replay.  Crash
    recovery restores the learner's own journalled checkpoint and
    replays only the suffix above it.
    """

    # Lost on crash by design: peer frontiers and the snapshot-install
    # scratchpad are re-learned from the next gossip round; the rest are
    # statistics.  Stable state is the decided log plus the learner's own
    # checkpoint journal (both restored in on_recover).
    VOLATILE = {
        "_decided_trail",
        "_installer",
        "_peer_frontiers",
        "acks_sent",
        "catchup_fallbacks",
        "catchup_requests",
        "delta_catchup_received",
        "delta_catchup_sent",
        "snapshot_chunks_sent",
        "snapshot_installs",
        "snapshots_taken",
    }

    def __init__(self, pid: str, sim: Runtime, config: InstancesConfig) -> None:
        super().__init__(pid, sim)
        self.config = config
        self.decided: dict[int, Hashable] = {}
        self.delivered: list[Hashable] = []
        self.catchup_requests = 0
        self.acks_sent = 0
        self.delta_catchup_sent = 0
        self.delta_catchup_received = 0
        self.catchup_fallbacks = 0
        # The delivered prefix as a delta trail: one entry per consumed
        # instance (NOOPs included), so ``size`` tracks _next_delivery and
        # a peer's stamped frontier addresses a suffix directly.  Reset
        # (re-anchored at the frontier, digest 0) on checkpoint adoption:
        # stamps from differently-anchored peers simply mismatch and fall
        # back to full values -- never wrong, at worst redundant.
        self._decided_trail = DeltaTrail(limit=_DECIDED_TRAIL_LIMIT)
        self.snapshots_taken = 0
        self.snapshot_installs = 0
        self.snapshot_chunks_sent = 0
        self.snap_frontier = 0  # our durable checkpoint covers [0, here)
        # At-most-once dedup: a bounded SessionDedup under SessionConfig,
        # an exact (unbounded) set otherwise.
        self._delivered_set = self._fresh_dedup()
        self._next_delivery = 0
        self._top_decided = -1  # highest decided instance (gap-scan bound)
        self._truncated_below = 0  # our decided log starts here
        self._bytes_since_snap = 0
        self._votes: dict[int, dict[RoundId, dict[str, Hashable]]] = {}
        self._callbacks: list[Callable[[int, Hashable], None]] = []
        self._adopt_callbacks: list[Callable[[int, tuple], None]] = []
        self._replica = None  # set via register_replica (OrderedReplica)
        self._peer_frontiers: dict[Hashable, int] = {}
        self._installer = SnapshotInstaller(self, lambda: self._next_delivery)
        if config.retransmit is not None:
            self.set_periodic_timer(
                config.retransmit.catchup_interval, self._catchup_tick
            )
        if config.checkpoint is not None:
            self.set_periodic_timer(
                config.checkpoint.advertise_interval, self._advertise
            )

    def on_deliver(self, callback: Callable[[int, Hashable], None]) -> None:
        self._callbacks.append(callback)

    def on_adopt(self, callback: Callable[[int, tuple], None]) -> None:
        """Observe checkpoint adoptions: ``callback(frontier, delivered)``.

        Fired whenever the delivered sequence is replaced wholesale
        (snapshot install or crash-recovery from a journalled
        checkpoint) -- the trace-checker's window into deliveries that
        never pass through :meth:`on_deliver` callbacks.
        """
        self._adopt_callbacks.append(callback)

    def register_replica(self, replica) -> None:
        """Attach the replica whose machine state our checkpoints capture."""
        self._replica = replica

    def has_delivered(self, cmd: Hashable) -> bool:
        """O(1) membership test on the delivered sequence."""
        return cmd in self._delivered_set

    def _fresh_dedup(self):
        """An empty delivered-dedup: bounded sessions or plain set."""
        if self.config.sessions is not None:
            return SessionDedup(self.config.sessions.window)
        return set()

    def retained_dedup(self) -> int:
        """Retained dedup cells (the sessions boundedness metric)."""
        if isinstance(self._delivered_set, SessionDedup):
            return self._delivered_set.retained()
        return len(self._delivered_set)

    def on_i2b(self, msg: I2b, src: Hashable) -> None:
        if msg.instance < self._truncated_below:
            return  # below our checkpoint: delivered and truncated
        existing = self.decided.get(msg.instance)
        if existing is not None and existing == msg.val:
            return  # straggler vote for a settled instance: no new info
        # Votes for undecided instances -- and votes *conflicting* with a
        # decision, which feed the consistency oracle below -- are indexed
        # by instance so a decision can release the whole buffer at once.
        # (A conflicting sub-quorum vote arriving after the decision keeps
        # its buffer: it is the oracle's evidence, and such votes only
        # exist after genuine instance races, so accumulation is bounded.)
        votes = self._votes.setdefault(msg.instance, {}).setdefault(msg.rnd, {})
        votes[msg.acceptor] = msg.val
        count = sum(1 for v in votes.values() if v == msg.val)
        if count < self.config.quorums.classic_quorum_size:
            return
        if existing is not None:
            _check_consistent(msg.instance, existing, msg.val)
        self._learn(msg.instance, msg.val)

    def _learn(self, instance: int, val: Hashable) -> None:
        self.decided[instance] = val
        self._top_decided = max(self._top_decided, instance)
        self._votes.pop(instance, None)
        if self.config.checkpoint is not None:
            self._bytes_since_snap += len(repr(val))
        if isinstance(val, Batch):
            for cmd in val.cmds:
                self.metrics.record_learn(cmd, self.pid, self.now)
        elif val != NOOP:
            self.metrics.record_learn(val, self.pid, self.now)
        self._ack(val, instance)
        self._deliver_ready()

    def _ack(self, val: Hashable, instance: int = -1) -> None:
        if self.config.retransmit is None or val == NOOP:
            return
        self.acks_sent += 1
        self.broadcast(self.config.topology.proposers, IAck(val, instance))

    def on_idecided(self, msg: IDecided, src: Hashable) -> None:
        if msg.instance < self._truncated_below:
            # Delivered, checkpointed and truncated -- but the announcement
            # means some proposer is still retrying, so re-ack.
            self._ack(msg.val, msg.instance)
            return
        existing = self.decided.get(msg.instance)
        if existing is not None:
            _check_consistent(msg.instance, existing, msg.val)
            # Re-ack: the announcement means some proposer is still
            # retrying, i.e. an earlier ack was lost.
            self._ack(msg.val, msg.instance)
            return
        self._learn(msg.instance, msg.val)

    # -- gap detection and catch-up -----------------------------------------

    def gaps(self, limit: int | None = None, start: int | None = None) -> list[int]:
        """Undecided instances up to the highest known-decided instance.

        Scans only the [delivery frontier, top decided] window, so the
        periodic gap poll is O(1) at quiescence instead of rescanning the
        whole decided history.  The scan is *inclusive* of the top:
        ``_top_decided`` is raised by checkpoint advertisements to
        ``frontier - 1`` without that instance being locally decided, and
        the last pre-checkpoint instance must be requestable too (when
        ``_top_decided`` was learned locally, the ``in decided`` filter
        drops it as before).

        ``limit`` stops the scan after that many gaps: a laggard whose
        top was advertisement-raised far beyond its log must not pay an
        O(deficit) scan per tick to fill a ``max_resend``-sized request.
        ``start`` raises the scan's lower bound (the log tier's actual
        coverage while a snapshot install is in flight).
        """
        lo = self._next_delivery if start is None else max(start, self._next_delivery)
        found: list[int] = []
        for i in range(lo, self._top_decided + 1):
            if i not in self.decided:
                found.append(i)
                if limit is not None and len(found) >= limit:
                    break
        return found

    def _catchup_tick(self) -> None:
        retransmit = self.config.retransmit
        if retransmit is None:
            return
        # Resumable snapshot install: the shared installer re-requests
        # missing chunks, abandons stalled transfers (re-sourcing via
        # _request_snapshot) and drops transfers that ordinary log replay
        # already overtook.
        start = self._installer.tick(self._request_snapshot)
        # Log-tier gap poll.  While a snapshot install is in flight, only
        # gaps at or above its frontier are worth requesting from the log
        # -- everything below arrives with the chunks, and acceptors could
        # only answer ITruncated churn anyway.
        missing_instances = self.gaps(limit=retransmit.max_resend, start=start)
        if not missing_instances:
            return
        self.catchup_requests += 1
        if start is None:
            # Stamp the contiguous delivered prefix so a peer learner can
            # answer with one IDecidedDelta suffix instead of full values.
            request = ICatchUp(
                tuple(missing_instances),
                self._decided_trail.size,
                self._decided_trail.digest,
            )
        else:
            # A snapshot install is in flight: the frontier is about to
            # jump, so a delta anchored at the current stamp would ship
            # values the install already carries.
            request = ICatchUp(tuple(missing_instances))
        peers = [pid for pid in self.config.topology.learners if pid != self.pid]
        self.broadcast(self.config.topology.acceptors, request)
        self.broadcast(peers, request)

    def on_icatchup(self, msg: ICatchUp, src: Hashable) -> None:
        """Answer a peer's gap request: a delta suffix, decisions, or a
        snapshot offer.

        A stamped request whose ``(frontier, digest)`` matches a base in
        our decided trail is answered with one :class:`IDecidedDelta`
        carrying the contiguous suffix -- the delta-wire-protocol path.
        Stamps we cannot match (too old, differently anchored, or absent)
        fall back to per-instance full values, and instances we truncated
        (below our checkpoint) are answered with a snapshot offer instead
        (tier two of catch-up).
        """
        served_below = -1
        if msg.frontier >= 0:
            suffix = self._decided_trail.suffix_from(msg.frontier, msg.digest)
            if suffix:
                cap = self.config.retransmit.max_resend if self.config.retransmit else 64
                chunk = suffix[:cap]
                self.delta_catchup_sent += 1
                self.send(src, IDecidedDelta(chunk))
                # Entries below this bound ride the delta; anything the
                # requester asked for above it (decided here but not yet
                # delivered, hence not in the trail) is served below.
                served_below = msg.frontier + len(chunk)
            elif suffix is None and msg.frontier < self._decided_trail.size:
                self.catchup_fallbacks += 1
        offered = False
        for instance in msg.instances:
            if instance < served_below:
                continue
            value = self.decided.get(instance)
            if value is not None:
                self.send(src, IDecided(instance, value))
            elif instance < self.snap_frontier and not offered:
                self.send(src, ISnapshotOffer(self.snap_frontier))
                offered = True

    def on_idecideddelta(self, msg: IDecidedDelta, src: Hashable) -> None:
        """Fold a peer's catch-up suffix, entry by entry.

        Each entry runs the same path as an :class:`IDecided` full value:
        the consistency oracle still checks every already-known instance,
        so a digest collision upstream can never smuggle in a divergent
        decision.
        """
        self.delta_catchup_received += 1
        for instance, value in msg.entries:
            if instance < self._truncated_below:
                continue
            existing = self.decided.get(instance)
            if existing is not None:
                _check_consistent(instance, existing, value)
                continue
            self._learn(instance, value)

    # -- checkpointing ------------------------------------------------------

    def _maybe_snapshot(self) -> None:
        checkpoint = self.config.checkpoint
        if checkpoint is None:
            return
        delta = self._next_delivery - self.snap_frontier
        if delta <= 0:
            return
        due = delta >= checkpoint.interval
        if not due and checkpoint.interval_bytes is not None:
            due = self._bytes_since_snap >= checkpoint.interval_bytes
        if due:
            self._take_snapshot()

    def _take_snapshot(self) -> None:
        """Checkpoint the delivery frontier; truncate; advertise.

        The checkpoint is one overwritten storage key -- checkpoints
        compact the log, they must not become a second growing log.  It
        carries the delivered command sequence (the replica's executed
        order plus the at-most-once dedup evidence) and the machine state,
        so an installer needs nothing else to resume from the frontier.
        """
        frontier = self._next_delivery
        machine_state = (
            self._replica.snapshot_state() if self._replica is not None else None
        )
        if self.config.sessions is not None:
            # Bounded-memory checkpoint: the dedup evidence rides in its
            # compact session form (packed into the machine field -- the
            # snapshot chunker only carries delivered/machine/frontier)
            # and the delivered tail is pruned to the window.
            machine_state = (
                "sessions1",
                machine_state,
                self._delivered_set.state(),
            )
            window = self.config.sessions.window
            if len(self.delivered) > window:
                del self.delivered[: len(self.delivered) - window]
        self.storage.write(
            "snapshot",
            {
                "frontier": frontier,
                "delivered": tuple(self.delivered),
                "machine": machine_state,
            },
        )
        self.snapshots_taken += 1
        self.snap_frontier = frontier
        self._bytes_since_snap = 0
        self._truncate_log(frontier)
        self._advertise()

    def _truncate_log(self, bound: int) -> None:
        """Drop decided entries and vote buffers below *bound*.

        Iterates the retained keys, not the instance range: a laggard
        installing a far-ahead checkpoint must pay O(retained entries),
        not O(frontier jump).
        """
        if bound <= self._truncated_below:
            return
        for instance in [i for i in self.decided if i < bound]:
            del self.decided[instance]
        for instance in [i for i in self._votes if i < bound]:
            del self._votes[instance]
        self._truncated_below = bound

    def _advertise(self) -> None:
        if self.config.checkpoint is None or self.snap_frontier <= 0:
            return
        msg = ICheckpoint(self.snap_frontier)
        self.broadcast(self.config.topology.coordinators, msg)
        self.broadcast(self.config.topology.acceptors, msg)
        self.broadcast(self.config.topology.proposers, msg)
        peers = [pid for pid in self.config.topology.learners if pid != self.pid]
        self.broadcast(peers, msg)

    def on_icheckpoint(self, msg: ICheckpoint, src: Hashable) -> None:
        if self.config.checkpoint is None:
            return
        if msg.frontier > self._peer_frontiers.get(src, 0):
            self._peer_frontiers[src] = msg.frontier
        if msg.frontier > self._next_delivery:
            # Everything below the peer's checkpoint is decided; surface
            # the deficit as a gap so the two-tier catch-up resolves it
            # (log replay above the cluster floor, install below it) --
            # this is how a restarted laggard discovers how far behind it
            # is without any new client traffic.
            self._top_decided = max(self._top_decided, msg.frontier - 1)

    def on_itruncated(self, msg: ITruncated, src: Hashable) -> None:
        """An acceptor's log horizon moved past our gap: install tier."""
        if msg.floor <= self._next_delivery:
            return  # our log position is fine; ordinary replay covers it
        self._request_snapshot()

    def _request_snapshot(self) -> None:
        """Ask the most advanced known peer for its checkpoint."""
        self._installer.request_from_best(self._peer_frontiers)

    def on_isnapshotoffer(self, msg: ISnapshotOffer, src: Hashable) -> None:
        if msg.frontier <= self._next_delivery:
            return  # no gain: we are already past the offered checkpoint
        self._installer.begin(src, msg.frontier)

    def on_isnapshotrequest(self, msg: ISnapshotRequest, src: Hashable) -> None:
        snapshot = self.storage.read("snapshot")
        if snapshot is None:
            return
        self.snapshot_chunks_sent += serve_snapshot(
            self, msg, src, snapshot, self.config.checkpoint.chunk_size
        )

    def on_isnapshotchunk(self, msg: ISnapshotChunk, src: Hashable) -> None:
        assembled = self._installer.fold_chunk(msg, src)
        if assembled is not None:
            self._install_snapshot(*assembled)

    def _install_snapshot(
        self, frontier: int, delivered: tuple, machine_state: Hashable | None
    ) -> None:
        """Adopt a fully assembled peer checkpoint (state transfer).

        The agreed total order makes our delivered sequence a prefix of
        the checkpoint's, so adoption is a fast-forward: machine state,
        executed order and dedup evidence all come from the checkpoint,
        the delivery frontier jumps to its frontier, and ordinary log
        replay resumes above it.  The installed checkpoint immediately
        becomes our own journalled checkpoint (a crash right after the
        install must not send us below the cluster's truncation floor
        again).
        """
        if frontier <= self._next_delivery:
            return
        self.snapshot_installs += 1
        # The installed checkpoint immediately becomes our own journalled
        # one: a crash right after the install must not send us below the
        # cluster's truncation floor again.
        self.storage.write(
            "snapshot",
            {"frontier": frontier, "delivered": delivered, "machine": machine_state},
        )
        self._adopt_checkpoint(frontier, delivered, machine_state)
        self._deliver_ready()  # buffered decisions above the frontier

    def _adopt_checkpoint(self, frontier: int, delivered: tuple, machine_state) -> None:
        """Fast-forward the delivery state to a checkpoint.

        Shared by snapshot install (state transfer) and crash-recovery
        (restoring the learner's own journalled checkpoint): the agreed
        total order makes the current delivered sequence a prefix of the
        checkpoint's, so adoption replaces it wholesale.
        """
        self.delivered = list(delivered)
        if (
            self.config.sessions is not None
            and isinstance(machine_state, tuple)
            and machine_state
            and machine_state[0] == "sessions1"
        ):
            _tag, machine_state, sess_state = machine_state
            self._delivered_set = SessionDedup.restore(
                sess_state, self.config.sessions.window
            )
        else:
            self._delivered_set = set(delivered)
        self._next_delivery = frontier
        self._top_decided = max(self._top_decided, frontier - 1)
        # Re-anchor the decided trail at the new frontier: the values
        # below it are gone (snapshot-carried), so the rolling prefix
        # digest is no longer computable.  Digest 0 at the frontier means
        # differently-anchored peers' stamps mismatch and fall back to
        # full values; two learners that adopted the same checkpoint
        # share the anchor and keep the delta path between them.
        self._decided_trail.reset(frontier, 0)
        self._truncate_log(frontier)
        if self._replica is not None:
            self._replica.install_snapshot(machine_state, delivered)
        self.snap_frontier = frontier
        self._bytes_since_snap = 0
        for callback in self._adopt_callbacks:
            callback(frontier, tuple(delivered))
        self._advertise()

    # -- crash-recovery -----------------------------------------------------

    def on_crash(self) -> None:
        if self.config.checkpoint is None:
            # Legacy behaviour (kept for the pre-checkpoint tests): the
            # learner's delivery state survives the crash object-wise and
            # recovery relies on catch-up only.
            return
        self.decided = {}
        self.delivered = []
        self._delivered_set = self._fresh_dedup()
        self._next_delivery = 0
        self._top_decided = -1
        self._truncated_below = 0
        self._bytes_since_snap = 0
        self.snap_frontier = 0
        self._votes = {}
        self._peer_frontiers = {}
        self._decided_trail = DeltaTrail(limit=_DECIDED_TRAIL_LIMIT)
        self._installer.reset()
        if self._replica is not None:
            self._replica.install_snapshot(None, ())

    def on_recover(self) -> None:
        # Timers died with the crash; re-arm the gap poll.  Decisions made
        # during the outage need no poll of their own: this learner never
        # acked them, so the proposers are still retrying, and the
        # resulting IDecided re-announcements raise _top_decided -- the
        # poll then fills whatever gaps remain below it.
        if self.config.retransmit is not None:
            self.set_periodic_timer(
                self.config.retransmit.catchup_interval, self._catchup_tick
            )
        if self.config.checkpoint is None:
            return
        self.set_periodic_timer(
            self.config.checkpoint.advertise_interval, self._advertise
        )
        # Snapshot-restore + suffix replay: our own journalled checkpoint
        # fast-forwards the delivery frontier; everything above it arrives
        # through the ordinary catch-up path (or snapshot install, if the
        # cluster truncated past us during the outage).
        snapshot = self.storage.read("snapshot")
        if snapshot is None:
            return
        self._adopt_checkpoint(
            snapshot["frontier"], snapshot["delivered"], snapshot["machine"]
        )

    def _deliver_ready(self) -> None:
        while self._next_delivery in self.decided:
            instance = self._next_delivery
            value = self.decided[instance]
            self._next_delivery += 1
            # One trail entry per consumed instance (NOOPs too): the
            # trail's size stays equal to the delivery frontier, so peer
            # stamps address suffixes by instance number.
            self._decided_trail.append(((instance, value),))
            if value == NOOP:
                continue
            cmds = value.cmds if isinstance(value, Batch) else (value,)
            for cmd in cmds:
                if cmd in self._delivered_set:
                    # At-most-once delivery: assignment races may decide the
                    # same command in two instances; later copies are no-ops.
                    continue
                self.delivered.append(cmd)
                self._delivered_set.add(cmd)
                for callback in self._callbacks:
                    callback(instance, cmd)
        self._maybe_snapshot()


@dataclass
class SMRCluster:
    """A deployed multicoordinated replication group."""

    sim: Runtime
    config: InstancesConfig
    proposers: list[SMRProposer]
    coordinators: list[SMRCoordinator]
    acceptors: list[SMRAcceptor]
    learners: list[SMRLearner]
    _proposal_index: int = field(default=0)

    def propose(self, cmd: Hashable, delay: float = 0.0, proposer: int | None = None) -> None:
        if proposer is None:
            proposer = self._proposal_index % len(self.proposers)
            self._proposal_index += 1
        agent = self.proposers[proposer]
        self.sim.schedule(delay, lambda: agent.propose(cmd))

    def start_round(self, rnd: RoundId, coordinator: int | None = None, delay: float = 0.0) -> None:
        index = rnd.coord if coordinator is None else coordinator
        agent = self.coordinators[index]
        self.sim.schedule(delay, lambda: agent.start_round(rnd))

    def set_load_balancing(self, enabled: bool) -> None:
        for proposer in self.proposers:
            proposer.balance_load = enabled

    def flush(self) -> None:
        """Force every proposer to ship its partial batch now."""
        for proposer in self.proposers:
            proposer.flush()

    def everyone_delivered(self, cmds) -> bool:
        cmds = list(cmds)
        return all(
            all(learner.has_delivered(cmd) for cmd in cmds)
            for learner in self.learners
        )

    def delivery_orders(self) -> list[tuple]:
        """Per-learner delivered sequences (for total-order assertions)."""
        return [tuple(learner.delivered) for learner in self.learners]

    def retransmission_stats(self) -> dict[str, int]:
        """Aggregate reliability-layer counters across the cluster."""
        return {
            "retransmissions": sum(p.retransmissions for p in self.proposers),
            "gossip_rounds": sum(c.gossip_sent for c in self.coordinators),
            "reannounced_2a": sum(c.reannounced_2a for c in self.coordinators),
            "catchup_requests": sum(l.catchup_requests for l in self.learners),
            "acks": sum(l.acks_sent for l in self.learners),
            "delta_catchups": sum(l.delta_catchup_sent for l in self.learners),
            "catchup_fallbacks": sum(l.catchup_fallbacks for l in self.learners),
        }

    def checkpoint_stats(self) -> dict[str, int]:
        """Aggregate checkpoint/GC counters across the cluster."""
        return {
            "snapshots": sum(l.snapshots_taken for l in self.learners),
            "installs": sum(l.snapshot_installs for l in self.learners),
            "chunks_sent": sum(l.snapshot_chunks_sent for l in self.learners),
            "min_snap_frontier": min(l.snap_frontier for l in self.learners),
            "acceptor_floor": min(a.gc_floor for a in self.acceptors),
            "coordinator_floor": min(c.gc_floor for c in self.coordinators),
        }

    def retained_state(self) -> dict[str, int]:
        """Worst-case per-process retained per-instance state, by kind.

        The bounded-memory claim of the checkpointing layer (E12, the
        long-run tests) is about exactly these numbers: with a
        ``CheckpointConfig`` they must track the checkpoint *window*, not
        the total history.
        """
        return {
            "acceptor votes": max(len(a.votes) for a in self.acceptors),
            "acceptor journal": max(
                a.storage.prefix_count("vote") for a in self.acceptors
            ),
            "coordinator decided": max(len(c.decided) for c in self.coordinators),
            "coordinator dedup": max(
                len(c._decided_values) for c in self.coordinators
            ),
            "learner decided": max(len(l.decided) for l in self.learners),
            "learner votes": max(len(l._votes) for l in self.learners),
        }

    def run_until_delivered(self, cmds, timeout: float = 5_000.0) -> bool:
        cmds = list(cmds)
        return self.sim.run_until(lambda: self.everyone_delivered(cmds), timeout=timeout)


def make_instances_config(
    n_proposers: int = 2,
    n_coordinators: int = 3,
    n_acceptors: int = 3,
    n_learners: int = 1,
    schedule: RoundSchedule | None = None,
    liveness: LivenessConfig | None = None,
    f: int | None = None,
    batching: BatchingConfig | None = None,
    retransmit: RetransmitConfig | None = None,
    checkpoint: CheckpointConfig | None = None,
    sessions: SessionConfig | None = None,
) -> InstancesConfig:
    """The deployment-independent engine config for a cluster shape.

    Shared by :func:`build_smr` (simulator, whole cluster in one runtime)
    and the networked node entrypoint (:mod:`repro.net.node`, each OS
    process builds the identical config and instantiates only its hosted
    roles) -- both backends must agree on topology, quorums and round
    schedule for the role classes to interoperate.
    """
    topology = Topology.build(n_proposers, n_coordinators, n_acceptors, n_learners)
    quorums = QuorumSystem(topology.acceptors, f=f)
    if schedule is None:
        schedule = RoundSchedule(range(n_coordinators), recovery_rtype=1)
    return InstancesConfig(
        topology=topology,
        quorums=quorums,
        schedule=schedule,
        liveness=liveness,
        batching=batching,
        retransmit=retransmit,
        checkpoint=checkpoint,
        sessions=sessions,
    )


def build_smr(
    sim: Runtime,
    n_proposers: int = 2,
    n_coordinators: int = 3,
    n_acceptors: int = 3,
    n_learners: int = 1,
    schedule: RoundSchedule | None = None,
    liveness: LivenessConfig | None = None,
    f: int | None = None,
    batching: BatchingConfig | None = None,
    retransmit: RetransmitConfig | None = None,
    checkpoint: CheckpointConfig | None = None,
    sessions: SessionConfig | None = None,
) -> SMRCluster:
    """Deploy a multicoordinated MultiPaxos replication group on *sim*."""
    config = make_instances_config(
        n_proposers=n_proposers,
        n_coordinators=n_coordinators,
        n_acceptors=n_acceptors,
        n_learners=n_learners,
        schedule=schedule,
        liveness=liveness,
        f=f,
        batching=batching,
        retransmit=retransmit,
        checkpoint=checkpoint,
        sessions=sessions,
    )
    topology = config.topology
    return SMRCluster(
        sim=sim,
        config=config,
        proposers=[SMRProposer(pid, sim, config) for pid in topology.proposers],
        coordinators=[
            SMRCoordinator(pid, sim, config, index)
            for index, pid in enumerate(topology.coordinators)
        ],
        acceptors=[SMRAcceptor(pid, sim, config) for pid in topology.acceptors],
        learners=[SMRLearner(pid, sim, config) for pid in topology.learners],
    )
